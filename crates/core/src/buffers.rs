//! Buffer bookkeeping: version tracking, location tracking and the GPU
//! scratch-buffer pool.
//!
//! FluidiCL keeps one copy of every application buffer per device and must
//! know, for each, *which kernel's output* it holds and *when* that content
//! became available (paper §5.3, §6.2). It also needs two extra GPU buffers
//! per modified buffer (the CPU-data landing area and the pristine original
//! for diff-merge), which are pooled to avoid per-kernel allocation costs
//! (paper §6.1).

use std::collections::HashMap;

use fluidicl_des::SimTime;
use fluidicl_vcl::{BufferId, ClError, ClResult, DirtyTracker};

/// Monotonic kernel identifier assigned per launch (paper §5.3 uses these as
/// buffer version numbers).
pub type KernelId = u64;

/// Per-buffer coherence state across the host/CPU and GPU copies.
#[derive(Clone, Debug)]
pub struct BufferState {
    /// Element count.
    pub len: usize,
    /// Version (kernel id) the buffer is expected to reach: the id of the
    /// latest kernel that writes it.
    pub expected_version: Option<KernelId>,
    /// Version held by the CPU copy and when it arrived.
    pub cpu_version: Option<KernelId>,
    /// Virtual time at which the CPU copy of the current version became
    /// usable.
    pub cpu_ready_at: SimTime,
    /// Version held by the GPU copy.
    pub gpu_version: Option<KernelId>,
    /// Virtual time at which the GPU copy of the current version became
    /// usable.
    pub gpu_ready_at: SimTime,
    /// Whether the GPU-side "original" snapshot for diff-merge is current
    /// (made at the end of the previous kernel, paper §5.5).
    pub orig_snapshot_current: bool,
    /// Elements of the GPU copy modified since the `orig_snapshot` was
    /// last refreshed: a stale snapshot needs only these re-copied. The
    /// tracker auto-selects exact ranges or a page map by buffer size.
    /// `None` means unknown (the whole buffer must be treated as dirty);
    /// only maintained under dirty-range transfers.
    pub gpu_dirty: Option<DirtyTracker>,
    /// Elements where the host/CPU copy is stale relative to the
    /// authoritative device copy — what a D2H read-back must ship. `None`
    /// means unknown (whole buffer); only maintained under dirty-range
    /// transfers.
    pub host_dirty: Option<DirtyTracker>,
}

impl BufferState {
    fn new(len: usize, now: SimTime) -> Self {
        BufferState {
            len,
            expected_version: None,
            cpu_version: None,
            cpu_ready_at: now,
            gpu_version: None,
            gpu_ready_at: now,
            orig_snapshot_current: false,
            gpu_dirty: None,
            host_dirty: None,
        }
    }

    /// Whether the CPU copy is stale relative to the expected version —
    /// the condition under which the CPU scheduler must wait (paper §5.3).
    pub fn cpu_is_stale(&self) -> bool {
        self.expected_version != self.cpu_version
    }

    /// Bytes a refresh of the `orig_snapshot` must copy: the known GPU
    /// dirty ranges, or the whole buffer when tracking is off/unknown.
    pub fn snapshot_refresh_bytes(&self) -> u64 {
        self.gpu_dirty
            .as_ref()
            .map_or_else(|| self.bytes(), |r| r.byte_count().min(self.bytes()))
    }

    /// Bytes a D2H read-back of this buffer must ship to bring the host
    /// copy current: the known host-stale ranges, or the whole buffer.
    pub fn read_back_bytes(&self) -> u64 {
        self.host_dirty
            .as_ref()
            .map_or_else(|| self.bytes(), |r| r.byte_count().min(self.bytes()))
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * 4
    }
}

/// Table of all application buffers and their coherence state.
#[derive(Clone, Debug, Default)]
pub struct BufferTable {
    states: HashMap<BufferId, BufferState>,
    next_id: u64,
}

impl BufferTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new buffer of `len` elements, fresh on both devices at
    /// time `now`.
    pub fn register(&mut self, len: usize, now: SimTime) -> BufferId {
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.states.insert(id, BufferState::new(len, now));
        id
    }

    /// State of one buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is unknown (runtime invariant: every handle the
    /// application holds was produced by [`BufferTable::register`]).
    pub fn state(&self, id: BufferId) -> &BufferState {
        self.states.get(&id).expect("unknown buffer id")
    }

    /// Mutable state of one buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is unknown.
    pub fn state_mut(&mut self, id: BufferId) -> &mut BufferState {
        self.states.get_mut(&id).expect("unknown buffer id")
    }

    /// State of one buffer, or [`fluidicl_vcl::ClError::InvalidBuffer`] for
    /// a handle this table never issued — the non-panicking accessor the
    /// runtime uses on paths reachable from application-supplied arguments.
    pub fn try_state(&self, id: BufferId) -> ClResult<&BufferState> {
        self.states.get(&id).ok_or(ClError::InvalidBuffer(id.0))
    }

    /// Mutable variant of [`BufferTable::try_state`].
    pub fn try_state_mut(&mut self, id: BufferId) -> ClResult<&mut BufferState> {
        self.states.get_mut(&id).ok_or(ClError::InvalidBuffer(id.0))
    }

    /// Whether the table knows this buffer.
    pub fn contains(&self, id: BufferId) -> bool {
        self.states.contains_key(&id)
    }

    /// Marks a host write: both copies now hold a fresh (pre-kernel)
    /// version.
    pub fn record_host_write(&mut self, id: BufferId, cpu_at: SimTime, gpu_at: SimTime) {
        let s = self.state_mut(id);
        s.expected_version = None;
        s.cpu_version = None;
        s.cpu_ready_at = cpu_at;
        s.gpu_version = None;
        s.gpu_ready_at = gpu_at;
        s.orig_snapshot_current = false;
        // The host replaced the content: the snapshot's delta vs the new
        // content is unknown, while host and device copies now agree.
        s.gpu_dirty = None;
        s.host_dirty = Some(DirtyTracker::new(s.len));
    }

    /// Marks the start of kernel `kid` writing `id`: the expected version
    /// advances (paper §5.3 sets expected versions at kernel begin).
    pub fn begin_kernel_write(&mut self, id: BufferId, kid: KernelId) {
        let s = self.state_mut(id);
        s.expected_version = Some(kid);
        s.orig_snapshot_current = false;
        // The kernel will dirty the host copy in as-yet-unknown ranges.
        s.host_dirty = None;
    }

    /// Records the dirty state after a co-executed kernel completed on
    /// `id` (dirty-range transfers only): the epilogue refreshed the orig
    /// snapshot and the D2H return (or CPU finish) brought the host copy
    /// current, so both dirty sets collapse to `stale_after` — empty in
    /// the steady state, which is what lets the *next* kernel's snapshot
    /// refresh and read-backs skip whole-buffer copies.
    pub fn record_kernel_dirty(
        &mut self,
        id: BufferId,
        gpu_dirty: DirtyTracker,
        host_dirty: DirtyTracker,
    ) {
        let s = self.state_mut(id);
        s.gpu_dirty = Some(gpu_dirty);
        s.host_dirty = Some(host_dirty);
    }

    /// Records that kernel `kid`'s result for `id` is available on the CPU
    /// at `at` (the device-to-host thread finished, or the CPU executed the
    /// whole NDRange — paper §5.6).
    pub fn record_cpu_arrival(&mut self, id: BufferId, kid: KernelId, at: SimTime) {
        let s = self.state_mut(id);
        // Stale messages (older kernel ids) are discarded (paper §5.3).
        if s.expected_version == Some(kid) {
            s.cpu_version = Some(kid);
            s.cpu_ready_at = at;
        }
    }

    /// Records that kernel `kid`'s merged result for `id` is resident on the
    /// GPU at `at`.
    pub fn record_gpu_arrival(&mut self, id: BufferId, kid: KernelId, at: SimTime) {
        let s = self.state_mut(id);
        if s.expected_version == Some(kid) {
            s.gpu_version = Some(kid);
            s.gpu_ready_at = at;
        }
    }

    /// Earliest time the CPU may start executing a kernel that reads
    /// `inputs` (the CPU scheduler waits for stale buffers; paper §5.3).
    pub fn cpu_ready_time(&self, inputs: &[BufferId]) -> SimTime {
        inputs
            .iter()
            .map(|id| self.state(*id).cpu_ready_at)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Earliest time the GPU may start executing a kernel touching `bufs`.
    pub fn gpu_ready_time(&self, bufs: &[BufferId]) -> SimTime {
        bufs.iter()
            .map(|id| self.state(*id).gpu_ready_at)
            .fold(SimTime::ZERO, SimTime::max)
    }
}

/// Statistics of one buffer-pool instance (exercised by paper §6.1's
/// buffer-management optimization).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of acquisitions served from the pool.
    pub hits: u64,
    /// Number of acquisitions that had to allocate.
    pub misses: u64,
}

/// Pool of reusable GPU scratch buffers, keyed by capacity.
///
/// With the pool disabled (paper's unoptimized configuration) every request
/// is a miss and the buffer is "destroyed" after release.
#[derive(Clone, Debug)]
pub struct ScratchPool {
    enabled: bool,
    free: Vec<usize>, // capacities of free buffers
    stats: PoolStats,
}

impl ScratchPool {
    /// Creates a pool; `enabled = false` models per-kernel create/destroy.
    pub fn new(enabled: bool) -> Self {
        ScratchPool {
            enabled,
            free: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Acquires a scratch buffer of at least `len` elements. Returns `true`
    /// when the request was a pool hit (no allocation cost).
    pub fn acquire(&mut self, len: usize) -> bool {
        if self.enabled {
            // Best-fit: smallest free buffer that is large enough.
            let candidate = self
                .free
                .iter()
                .enumerate()
                .filter(|(_, &cap)| cap >= len)
                .min_by_key(|(_, &cap)| cap)
                .map(|(i, _)| i);
            if let Some(i) = candidate {
                self.free.swap_remove(i);
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Releases a scratch buffer of capacity `len` back to the pool (no-op
    /// when disabled: the buffer is destroyed).
    pub fn release(&mut self, len: usize) {
        if self.enabled {
            self.free.push(len);
        }
    }

    /// Usage statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of buffers currently free in the pool.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }
}

/// Pool of host-side `Vec<f32>` allocations reused for the per-kernel
/// "pristine original" snapshots of the diff-merge (paper §4.3).
///
/// Unlike [`ScratchPool`], which only *costs* allocations on the virtual
/// GPU timeline, this pool recycles the real heap allocations the
/// functional engine needs: every co-executed kernel snapshots each output
/// buffer once, and without pooling that is one `Vec` allocation per output
/// buffer per launch for the lifetime of a benchmark.
#[derive(Clone, Debug, Default)]
pub struct SnapshotPool {
    free: Vec<Vec<f32>>,
    hits: u64,
    misses: u64,
}

impl SnapshotPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out an empty vector, reusing the largest pooled allocation.
    pub fn acquire(&mut self) -> Vec<f32> {
        match self.free.pop() {
            Some(v) => {
                self.hits += 1;
                v
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a vector to the pool (cleared, capacity kept).
    pub fn release(&mut self, mut v: Vec<f32>) {
        v.clear();
        // Keep larger allocations near the top so acquire() prefers them.
        self.free.push(v);
        self.free.sort_by_key(Vec::capacity);
    }

    /// `(hits, misses)` of [`SnapshotPool::acquire`] so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of free (returned) allocations currently pooled. Balanced
    /// accounting means `free_count() == acquires - outstanding`, including
    /// across launches that failed mid-flight.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_vcl::DirtyRanges;

    fn exact(len: usize, ranges: impl IntoIterator<Item = (usize, usize)>) -> DirtyTracker {
        DirtyTracker::exact(len, DirtyRanges::from_ranges(ranges))
    }

    #[test]
    fn snapshot_pool_recycles_allocations() {
        let mut p = SnapshotPool::new();
        let mut a = p.acquire();
        a.extend_from_slice(&[1.0; 64]);
        let cap = a.capacity();
        let ptr = a.as_ptr();
        p.release(a);
        let b = p.acquire();
        assert!(b.is_empty(), "pooled vectors come back cleared");
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr, "the same allocation is reused");
        assert_eq!(p.stats(), (1, 1));
    }

    #[test]
    fn snapshot_pool_prefers_the_largest_free_vec() {
        let mut p = SnapshotPool::new();
        p.release(Vec::with_capacity(8));
        p.release(Vec::with_capacity(128));
        p.release(Vec::with_capacity(32));
        assert!(p.acquire().capacity() >= 128);
    }

    #[test]
    fn register_assigns_fresh_ids() {
        let mut t = BufferTable::new();
        let a = t.register(10, SimTime::ZERO);
        let b = t.register(20, SimTime::ZERO);
        assert_ne!(a, b);
        assert_eq!(t.state(a).len, 10);
        assert_eq!(t.state(b).bytes(), 80);
        assert!(t.contains(a));
    }

    #[test]
    fn forged_ids_yield_typed_errors() {
        let mut t = BufferTable::new();
        let real = t.register(4, SimTime::ZERO);
        let forged = BufferId(real.0 + 1000);
        assert!(t.try_state(real).is_ok());
        assert!(matches!(
            t.try_state(forged),
            Err(ClError::InvalidBuffer(id)) if id == forged.0
        ));
        assert!(matches!(
            t.try_state_mut(forged),
            Err(ClError::InvalidBuffer(_))
        ));
    }

    #[test]
    fn fresh_buffer_is_not_stale() {
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        assert!(!t.state(a).cpu_is_stale());
    }

    #[test]
    fn kernel_write_makes_cpu_stale_until_arrival() {
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        t.begin_kernel_write(a, 7);
        assert!(t.state(a).cpu_is_stale());
        t.record_cpu_arrival(a, 7, SimTime::from_nanos(100));
        assert!(!t.state(a).cpu_is_stale());
        assert_eq!(t.state(a).cpu_ready_at, SimTime::from_nanos(100));
    }

    #[test]
    fn stale_arrivals_are_discarded() {
        // Paper §5.3: version numbers discard messages that arrive late.
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        t.begin_kernel_write(a, 7);
        t.begin_kernel_write(a, 9); // a newer kernel supersedes kernel 7
        t.record_cpu_arrival(a, 7, SimTime::from_nanos(50));
        assert!(t.state(a).cpu_is_stale(), "old version must not satisfy");
        t.record_cpu_arrival(a, 9, SimTime::from_nanos(80));
        assert!(!t.state(a).cpu_is_stale());
    }

    #[test]
    fn ready_times_take_the_maximum() {
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        let b = t.register(4, SimTime::ZERO);
        t.begin_kernel_write(a, 1);
        t.record_cpu_arrival(a, 1, SimTime::from_nanos(500));
        t.begin_kernel_write(b, 2);
        t.record_cpu_arrival(b, 2, SimTime::from_nanos(300));
        assert_eq!(t.cpu_ready_time(&[a, b]), SimTime::from_nanos(500));
        assert_eq!(t.cpu_ready_time(&[]), SimTime::ZERO);
    }

    #[test]
    fn host_write_resets_versions() {
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        t.begin_kernel_write(a, 3);
        t.record_host_write(a, SimTime::from_nanos(10), SimTime::from_nanos(40));
        assert!(!t.state(a).cpu_is_stale());
        assert_eq!(t.gpu_ready_time(&[a]), SimTime::from_nanos(40));
    }

    #[test]
    fn fresh_buffer_has_unknown_dirty_ranges() {
        let mut t = BufferTable::new();
        let a = t.register(256, SimTime::ZERO);
        assert_eq!(t.state(a).gpu_dirty, None);
        assert_eq!(t.state(a).host_dirty, None);
        // Unknown ranges must be treated as whole-buffer copies.
        assert_eq!(t.state(a).snapshot_refresh_bytes(), 1024);
        assert_eq!(t.state(a).read_back_bytes(), 1024);
    }

    #[test]
    fn kernel_dirty_ranges_bound_refresh_and_read_back() {
        let mut t = BufferTable::new();
        let a = t.register(256, SimTime::ZERO);
        t.record_kernel_dirty(
            a,
            exact(256, [(0, 64), (128, 160)]),
            exact(256, [(200, 220)]),
        );
        // 96 elements GPU-dirty, 20 elements host-stale (×4 bytes each).
        assert_eq!(t.state(a).snapshot_refresh_bytes(), 384);
        assert_eq!(t.state(a).read_back_bytes(), 80);
        // A host write invalidates the snapshot delta but makes host and
        // device copies agree.
        t.record_host_write(a, SimTime::from_nanos(10), SimTime::from_nanos(40));
        assert_eq!(t.state(a).gpu_dirty, None);
        assert_eq!(t.state(a).host_dirty, Some(DirtyTracker::new(256)));
        assert_eq!(t.state(a).snapshot_refresh_bytes(), 1024);
        assert_eq!(t.state(a).read_back_bytes(), 0);
    }

    #[test]
    fn kernel_write_makes_host_staleness_unknown() {
        let mut t = BufferTable::new();
        let a = t.register(64, SimTime::ZERO);
        t.record_kernel_dirty(a, DirtyTracker::new(64), DirtyTracker::new(64));
        assert_eq!(t.state(a).snapshot_refresh_bytes(), 0);
        t.begin_kernel_write(a, 1);
        assert_eq!(t.state(a).host_dirty, None, "in-flight writes are unknown");
        assert_eq!(t.state(a).read_back_bytes(), 256);
        // The snapshot delta is untouched: nothing changed the GPU copy yet.
        assert_eq!(t.state(a).snapshot_refresh_bytes(), 0);
    }

    #[test]
    fn dirty_byte_counts_clamp_to_the_buffer_size() {
        let mut t = BufferTable::new();
        let a = t.register(8, SimTime::ZERO);
        t.record_kernel_dirty(a, exact(8, [(0, 1000)]), exact(8, [(0, 1000)]));
        assert_eq!(t.state(a).snapshot_refresh_bytes(), 32);
        assert_eq!(t.state(a).read_back_bytes(), 32);
    }

    #[test]
    fn paged_trackers_account_page_granular_bytes() {
        use fluidicl_vcl::{PAGED_MIN_LEN, PAGE_ELEMS};
        let mut t = BufferTable::new();
        let a = t.register(PAGED_MIN_LEN, SimTime::ZERO);
        let mut gpu = DirtyTracker::new(PAGED_MIN_LEN);
        let mut host = DirtyTracker::new(PAGED_MIN_LEN);
        assert!(gpu.is_paged(), "huge buffers auto-select the page map");
        gpu.mark_range(10, 11); // one element ⇒ one page
        host.mark_range(0, 2 * PAGE_ELEMS);
        t.record_kernel_dirty(a, gpu, host);
        // Page-granular counts are a superset of the exact write set.
        assert_eq!(t.state(a).snapshot_refresh_bytes(), PAGE_ELEMS as u64 * 4);
        assert_eq!(t.state(a).read_back_bytes(), 2 * PAGE_ELEMS as u64 * 4);
    }

    #[test]
    fn stale_gpu_arrivals_are_discarded() {
        // The GPU side uses the same version filter as the CPU side: a
        // merge result for a superseded kernel must not mark the buffer
        // ready (paper §5.3).
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        t.begin_kernel_write(a, 3);
        t.begin_kernel_write(a, 5);
        t.record_gpu_arrival(a, 3, SimTime::from_nanos(60));
        assert_eq!(t.state(a).gpu_version, None, "old merge must be ignored");
        assert_eq!(t.state(a).gpu_ready_at, SimTime::ZERO);
        t.record_gpu_arrival(a, 5, SimTime::from_nanos(90));
        assert_eq!(t.state(a).gpu_version, Some(5));
        assert_eq!(t.gpu_ready_time(&[a]), SimTime::from_nanos(90));
    }

    #[test]
    fn gpu_ready_time_takes_the_maximum() {
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        let b = t.register(4, SimTime::ZERO);
        t.begin_kernel_write(a, 1);
        t.record_gpu_arrival(a, 1, SimTime::from_nanos(250));
        t.begin_kernel_write(b, 2);
        t.record_gpu_arrival(b, 2, SimTime::from_nanos(700));
        assert_eq!(t.gpu_ready_time(&[a, b]), SimTime::from_nanos(700));
        assert_eq!(t.gpu_ready_time(&[]), SimTime::ZERO);
    }

    #[test]
    fn orig_snapshot_tracks_write_boundaries() {
        // The diff-merge "original" snapshot is taken at the end of a
        // kernel and invalidated by the next write to the buffer (either a
        // new kernel or the host).
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        assert!(
            !t.state(a).orig_snapshot_current,
            "fresh buffers start cold"
        );
        t.state_mut(a).orig_snapshot_current = true; // snapshot taken
        t.begin_kernel_write(a, 1);
        assert!(
            !t.state(a).orig_snapshot_current,
            "a new kernel write invalidates the snapshot"
        );
        t.state_mut(a).orig_snapshot_current = true;
        t.record_host_write(a, SimTime::ZERO, SimTime::ZERO);
        assert!(
            !t.state(a).orig_snapshot_current,
            "a host write invalidates the snapshot"
        );
    }

    #[test]
    fn arrivals_do_not_clear_staleness_of_the_other_side() {
        // CPU and GPU readiness are independent: a CPU arrival satisfies
        // cpu_is_stale but leaves the GPU copy at its old version.
        let mut t = BufferTable::new();
        let a = t.register(4, SimTime::ZERO);
        t.begin_kernel_write(a, 2);
        t.record_cpu_arrival(a, 2, SimTime::from_nanos(40));
        assert!(!t.state(a).cpu_is_stale());
        assert_eq!(t.state(a).gpu_version, None);
        assert_eq!(t.gpu_ready_time(&[a]), SimTime::ZERO);
    }

    #[test]
    fn pool_accounts_every_acquire_release_cycle() {
        // Steady-state reuse: after the first allocation each
        // acquire/release pair is a hit and the pool never grows.
        let mut p = ScratchPool::new(true);
        assert!(!p.acquire(64));
        p.release(64);
        for _ in 0..5 {
            assert!(p.acquire(64));
            assert_eq!(p.free_count(), 0, "the sole buffer is checked out");
            p.release(64);
            assert_eq!(p.free_count(), 1);
        }
        assert_eq!(p.stats(), PoolStats { hits: 5, misses: 1 });
    }

    #[test]
    fn disabled_pool_never_retains_buffers() {
        let mut p = ScratchPool::new(false);
        for len in [8, 8, 16, 16] {
            assert!(!p.acquire(len));
            p.release(len);
            assert_eq!(p.free_count(), 0, "released buffers are destroyed");
        }
        assert_eq!(p.stats(), PoolStats { hits: 0, misses: 4 });
    }

    #[test]
    fn pool_reuses_buffers_when_enabled() {
        let mut p = ScratchPool::new(true);
        assert!(!p.acquire(100), "first request allocates");
        p.release(100);
        assert!(p.acquire(50), "smaller request reuses the freed buffer");
        p.release(100);
        assert!(!p.acquire(200), "larger request allocates again");
        assert_eq!(p.stats(), PoolStats { hits: 1, misses: 2 });
    }

    #[test]
    fn pool_prefers_best_fit() {
        let mut p = ScratchPool::new(true);
        p.release(1000);
        p.release(100);
        assert!(p.acquire(50));
        // The 100-capacity buffer should have been chosen, leaving 1000.
        assert!(p.acquire(500));
        assert_eq!(p.free_count(), 0);
    }

    #[test]
    fn disabled_pool_always_misses() {
        let mut p = ScratchPool::new(false);
        assert!(!p.acquire(10));
        p.release(10);
        assert!(!p.acquire(10));
        assert_eq!(p.stats(), PoolStats { hits: 0, misses: 2 });
        assert_eq!(p.free_count(), 0);
    }
}
