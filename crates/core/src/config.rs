//! Runtime configuration: chunk-sizing parameters and optimization toggles.

use std::fmt;
use std::sync::Arc;

use fluidicl_hetsim::AbortMode;
use fluidicl_vcl::FaultPlan;

use crate::lint::LintDiagnostic;
use crate::recover::RecoveryPolicy;
use crate::stats::KernelReport;

/// A runtime debug hook invoked with every completed kernel report (after
/// the built-in protocol lint when `validate_protocol` is on). Any
/// error-severity finding the hook returns fails the enqueue with
/// [`ClError::ProtocolViolation`](fluidicl_vcl::ClError::ProtocolViolation),
/// exactly like a lint error. External checkers — e.g. the happens-before
/// race detector in `fluidicl-check` — install themselves here to validate
/// traces *inside* the runtime during debugging runs, without the core
/// crate depending on them.
#[derive(Clone)]
pub struct ReportHook(Arc<ReportCheckFn>);

/// Checker closure type wrapped by [`ReportHook`].
type ReportCheckFn = dyn Fn(&KernelReport) -> Vec<LintDiagnostic> + Send + Sync;

impl ReportHook {
    /// Wraps a checker closure as a hook.
    pub fn new(f: impl Fn(&KernelReport) -> Vec<LintDiagnostic> + Send + Sync + 'static) -> Self {
        ReportHook(Arc::new(f))
    }

    /// Runs the hook on one report.
    pub fn run(&self, report: &KernelReport) -> Vec<LintDiagnostic> {
        (self.0)(report)
    }
}

impl fmt::Debug for ReportHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReportHook(..)")
    }
}

impl PartialEq for ReportHook {
    fn eq(&self, other: &Self) -> bool {
        // Closures have no structural equality; two configs compare equal
        // only when they share the same hook instance.
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Configuration of the FluidiCL runtime.
///
/// Defaults follow the paper's experimental setup (§5.1, §9.5): an initial
/// CPU chunk of 2% of the work-groups growing in 2% steps, all optimizations
/// of §6 enabled except online profiling (which §9.1 runs separately).
///
/// # Examples
///
/// ```
/// use fluidicl::FluidiclConfig;
///
/// let cfg = FluidiclConfig::default().with_chunk(5.0, 1.0);
/// assert_eq!(cfg.initial_chunk_pct, 5.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FluidiclConfig {
    /// Initial CPU subkernel allocation, percent of total work-groups.
    pub initial_chunk_pct: f64,
    /// Chunk growth step, percent of total work-groups. Zero freezes the
    /// chunk at its initial size (paper §9.5).
    pub step_pct: f64,
    /// Where GPU kernels check for CPU completion (paper §6.4–6.5):
    /// `InLoopUnrolled` is the paper's "AllOpt", `InLoop` is "NoUnroll",
    /// `WorkGroupStart` is "NoAbortUnroll".
    pub abort_mode: AbortMode,
    /// CPU work-group splitting when the allocation is smaller than the
    /// hardware thread count (paper §6.3).
    pub wg_split: bool,
    /// Reuse a pool of GPU scratch buffers across kernels instead of
    /// creating/destroying them per launch (paper §6.1).
    pub buffer_pool: bool,
    /// Online profiling over alternate kernel versions (paper §6.6).
    pub online_profiling: bool,
    /// Track where the freshest copy of each buffer lives to skip redundant
    /// device-to-host transfers on reads (paper §6.2).
    pub location_tracking: bool,
    /// Relative improvement in time-per-work-group required to keep growing
    /// the chunk (paper §5.1 "so long as the average time per work-group
    /// keeps decreasing").
    pub chunk_growth_tolerance: f64,
    /// Run the protocol-trace linter after every co-executed kernel and fail
    /// the enqueue with `ClError::ProtocolViolation` if an invariant broke.
    /// On by default in debug/test builds, off in release builds.
    pub validate_protocol: bool,
    /// Ship only the dirty (written) element ranges of each CPU subkernel
    /// through the H2D queue instead of whole output buffers, charge the
    /// GPU merge for the shipped bytes only, and track per-buffer dirty
    /// ranges so snapshot refreshes and D2H read-backs copy only stale
    /// data. On by default; [`FluidiclConfig::with_whole_buffer_transfers`]
    /// restores the legacy whole-buffer protocol byte-for-byte.
    pub dirty_range_transfers: bool,
    /// Bound on the CPU's compute/transfer overlap: how many completed
    /// subkernels may sit in the staging-copy/ship window before the
    /// scheduler stops taking new work. Depth 1 reproduces the serial
    /// protocol byte-for-byte (each subkernel waits for the previous one's
    /// staging copy); depth ≥ 2 lets subkernel *k+1* compute while *k*'s
    /// data+status is still in flight, and back-to-back completed
    /// subkernels waiting on a busy link are coalesced into one
    /// data+status batch. Default 2.
    pub pipeline_depth: u32,
    /// Thread budget for executing one device's work-group range (an
    /// implementation-level speedup of the *functional* executor, not part
    /// of the paper's protocol — virtual timings are unaffected). Values
    /// above 1 split a range across threads only for kernels that declare
    /// disjoint per-group writes; results stay byte-identical. Default 1
    /// (sequential).
    pub intra_launch_jobs: usize,
    /// Seeded fault-injection plan. `None` (the default) means no faults
    /// *and* no recovery machinery on the event timeline — traces and
    /// timings stay byte-identical to a build without the fault subsystem.
    pub faults: Option<FaultPlan>,
    /// Watchdog/retry tuning used when `faults` is set.
    pub recovery: RecoveryPolicy,
    /// Optional debug hook run on every completed kernel report; its
    /// error-severity findings abort the enqueue like lint errors. `None`
    /// (the default) costs nothing.
    pub report_hook: Option<ReportHook>,
    /// Cap on how many devices co-execute: CPU + owner GPU + peer GPUs.
    /// `None` (the default) uses every peer the machine declares; `Some(2)`
    /// forces the paper's two-device protocol even on a machine with
    /// peers. Values beyond the machine's device count are clamped.
    pub devices: Option<usize>,
    /// Defer enqueued kernels into a dependence DAG and dispatch
    /// independent nodes concurrently across devices (HEFT-style lookahead
    /// over footprint-derived edges). Off by default: single-kernel
    /// programs and the gate-off path stay byte-identical to the serial
    /// enqueue protocol. When on, launches accumulate until a buffer read
    /// (or an explicit [`Fluidicl::flush_graph`](crate::Fluidicl::flush_graph))
    /// forces the graph to execute.
    pub graph_scheduling: bool,
}

impl Default for FluidiclConfig {
    fn default() -> Self {
        FluidiclConfig {
            initial_chunk_pct: 2.0,
            step_pct: 2.0,
            abort_mode: AbortMode::InLoopUnrolled,
            wg_split: true,
            buffer_pool: true,
            online_profiling: false,
            location_tracking: true,
            chunk_growth_tolerance: 0.02,
            validate_protocol: cfg!(debug_assertions),
            dirty_range_transfers: true,
            pipeline_depth: 2,
            intra_launch_jobs: 1,
            faults: None,
            recovery: RecoveryPolicy::default(),
            report_hook: None,
            devices: None,
            graph_scheduling: false,
        }
    }
}

impl FluidiclConfig {
    /// Returns a copy with different chunk-sizing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `initial_pct` is not in `(0, 100]` or `step_pct` is
    /// negative.
    #[must_use]
    pub fn with_chunk(mut self, initial_pct: f64, step_pct: f64) -> Self {
        assert!(
            initial_pct > 0.0 && initial_pct <= 100.0,
            "initial chunk must be in (0, 100] percent"
        );
        assert!(step_pct >= 0.0, "step must be non-negative");
        self.initial_chunk_pct = initial_pct;
        self.step_pct = step_pct;
        self
    }

    /// Returns a copy capped at `n` co-executing devices (CPU + owner GPU
    /// + peers). `with_devices(2)` pins the paper's two-device protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` — co-execution needs at least CPU + owner GPU.
    #[must_use]
    pub fn with_devices(mut self, n: usize) -> Self {
        assert!(n >= 2, "co-execution needs at least CPU + owner GPU");
        self.devices = Some(n);
        self
    }

    /// Returns a copy with a different abort mode.
    #[must_use]
    pub fn with_abort_mode(mut self, mode: AbortMode) -> Self {
        self.abort_mode = mode;
        self
    }

    /// Returns a copy with online profiling enabled or disabled.
    #[must_use]
    pub fn with_online_profiling(mut self, enabled: bool) -> Self {
        self.online_profiling = enabled;
        self
    }

    /// Returns a copy with work-group splitting enabled or disabled.
    #[must_use]
    pub fn with_wg_split(mut self, enabled: bool) -> Self {
        self.wg_split = enabled;
        self
    }

    /// Returns a copy with the buffer pool enabled or disabled.
    #[must_use]
    pub fn with_buffer_pool(mut self, enabled: bool) -> Self {
        self.buffer_pool = enabled;
        self
    }

    /// Returns a copy with location tracking enabled or disabled.
    #[must_use]
    pub fn with_location_tracking(mut self, enabled: bool) -> Self {
        self.location_tracking = enabled;
        self
    }

    /// Returns a copy with post-kernel protocol validation enabled or
    /// disabled.
    #[must_use]
    pub fn with_validate_protocol(mut self, enabled: bool) -> Self {
        self.validate_protocol = enabled;
        self
    }

    /// Returns a copy with dirty-range transfer modelling enabled or
    /// disabled.
    #[must_use]
    pub fn with_dirty_range_transfers(mut self, enabled: bool) -> Self {
        self.dirty_range_transfers = enabled;
        self
    }

    /// Returns a copy using the legacy whole-buffer transfer protocol:
    /// every CPU subkernel ships its full output buffers and the merge
    /// walks them entirely. Compatibility alias for
    /// `with_dirty_range_transfers(false)` — with pipeline depth 1 it
    /// reproduces the historical serial traces byte-for-byte.
    #[must_use]
    pub fn with_whole_buffer_transfers(self) -> Self {
        self.with_dirty_range_transfers(false)
    }

    /// Returns a copy with a different pipeline depth (values below 1 are
    /// clamped to 1; depth 1 is the serial protocol).
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: u32) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Returns a copy with a different intra-launch thread budget (values
    /// below 1 are clamped to 1).
    #[must_use]
    pub fn with_intra_launch_jobs(mut self, jobs: usize) -> Self {
        self.intra_launch_jobs = jobs.max(1);
        self
    }

    /// Returns a copy with a seeded fault-injection plan (or `None` to
    /// disable injection).
    #[must_use]
    pub fn with_faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan;
        self
    }

    /// Returns a copy with different recovery tuning.
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Returns a copy with a report debug hook installed (or removed with
    /// `None`). The hook runs on every completed kernel report and its
    /// error-severity findings fail the enqueue.
    #[must_use]
    pub fn with_report_hook(mut self, hook: Option<ReportHook>) -> Self {
        self.report_hook = hook;
        self
    }

    /// Returns a copy with kernel-graph scheduling enabled or disabled.
    #[must_use]
    pub fn with_graph_scheduling(mut self, enabled: bool) -> Self {
        self.graph_scheduling = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = FluidiclConfig::default();
        assert_eq!(cfg.initial_chunk_pct, 2.0);
        assert_eq!(cfg.step_pct, 2.0);
        assert_eq!(cfg.abort_mode, AbortMode::InLoopUnrolled);
        assert!(cfg.wg_split);
        assert!(cfg.buffer_pool);
        assert!(!cfg.online_profiling);
        assert!(cfg.location_tracking);
        assert_eq!(cfg.validate_protocol, cfg!(debug_assertions));
        assert!(
            cfg.dirty_range_transfers,
            "dirty-range transfers are the default; whole-buffer is the compat path"
        );
        assert_eq!(cfg.pipeline_depth, 2, "one subkernel overlaps its ship");
        assert_eq!(cfg.intra_launch_jobs, 1, "parallel execution is opt-in");
        assert_eq!(cfg.faults, None, "fault injection is opt-in");
        assert_eq!(cfg.recovery, RecoveryPolicy::default());
        assert!(cfg.report_hook.is_none(), "debug hook is opt-in");
        assert_eq!(cfg.devices, None, "every declared peer co-executes");
        assert!(!cfg.graph_scheduling, "graph scheduling is opt-in");
    }

    #[test]
    fn report_hook_compares_by_identity_and_runs() {
        let hook = ReportHook::new(|r| {
            vec![LintDiagnostic::warning(
                "test-rule",
                format!("kernel {}", r.kernel),
            )]
        });
        let a = FluidiclConfig::default().with_report_hook(Some(hook.clone()));
        let b = FluidiclConfig::default().with_report_hook(Some(hook.clone()));
        assert_eq!(a, b, "same hook instance compares equal");
        let c = FluidiclConfig::default().with_report_hook(Some(ReportHook::new(|_| Vec::new())));
        assert_ne!(a, c, "distinct hook instances differ");
        assert_eq!(a.with_report_hook(None), FluidiclConfig::default());
        assert!(format!("{hook:?}").contains("ReportHook"));
    }

    #[test]
    fn builders_compose() {
        let cfg = FluidiclConfig::default()
            .with_chunk(10.0, 0.0)
            .with_abort_mode(AbortMode::WorkGroupStart)
            .with_wg_split(false)
            .with_buffer_pool(false)
            .with_online_profiling(true)
            .with_location_tracking(false)
            .with_validate_protocol(true)
            .with_whole_buffer_transfers()
            .with_pipeline_depth(0)
            .with_intra_launch_jobs(0);
        assert_eq!(cfg.initial_chunk_pct, 10.0);
        assert_eq!(cfg.step_pct, 0.0);
        assert_eq!(cfg.abort_mode, AbortMode::WorkGroupStart);
        assert!(!cfg.wg_split);
        assert!(!cfg.buffer_pool);
        assert!(cfg.online_profiling);
        assert!(!cfg.location_tracking);
        assert!(cfg.validate_protocol);
        assert!(!cfg.dirty_range_transfers, "compat flag turns dirty off");
        assert_eq!(cfg.pipeline_depth, 1, "zero is clamped to serial");
        assert_eq!(cfg.intra_launch_jobs, 1, "zero is clamped to sequential");
        let cfg = cfg.with_dirty_range_transfers(true).with_pipeline_depth(4);
        assert!(cfg.dirty_range_transfers);
        assert_eq!(cfg.pipeline_depth, 4);
        let cfg = cfg.with_devices(3);
        assert_eq!(cfg.devices, Some(3));
        let cfg = cfg.with_graph_scheduling(true);
        assert!(cfg.graph_scheduling);
        assert!(!cfg.with_graph_scheduling(false).graph_scheduling);
    }

    #[test]
    #[should_panic(expected = "at least CPU + owner GPU")]
    fn rejects_fewer_than_two_devices() {
        let _ = FluidiclConfig::default().with_devices(1);
    }

    #[test]
    fn fault_builders_compose() {
        use fluidicl_vcl::FaultKind;
        let plan = FaultPlan::new(FaultKind::TransferStall, 3);
        let cfg = FluidiclConfig::default()
            .with_faults(Some(plan))
            .with_recovery(RecoveryPolicy::default().with_max_transfer_retries(1));
        assert_eq!(cfg.faults, Some(plan));
        assert_eq!(cfg.recovery.max_transfer_retries, 1);
        assert_eq!(cfg.with_faults(None).faults, None);
    }

    #[test]
    #[should_panic(expected = "initial chunk")]
    fn rejects_zero_initial_chunk() {
        let _ = FluidiclConfig::default().with_chunk(0.0, 1.0);
    }
}
