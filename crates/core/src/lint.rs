//! Protocol-trace linter: checks a co-executed kernel's [`TraceEvent`] log
//! against the FluidiCL protocol invariants.
//!
//! The co-execution engine records every protocol event with its virtual
//! timestamp (sorted chronologically, ties in processing order), so the
//! trace is a complete replayable record of one kernel's execution. This
//! module replays it and verifies the properties the paper's protocol
//! guarantees by construction:
//!
//! * the CPU-completion **watermark only decreases** (paper §4.2 — status
//!   boundaries move from the top of the NDRange downward);
//! * **data precedes status** on the in-order host-to-device queue: the
//!   k-th status message corresponds to the k-th enqueued transfer and
//!   cannot arrive before it was sent (§4.2, §5.4);
//! * GPU **waves stay below the watermark** known when they start, ascend
//!   contiguously from 0, and never run past the kernel exit (§4.2, Fig. 6);
//! * CPU **subkernels descend contiguously** from the top of the NDRange
//!   (§4.2, Fig. 7), one in flight at a time;
//! * GPU-executed ranges and the CPU-merged region together **cover**
//!   `[0, total)` — no work-group is lost (§4.3);
//! * exactly one **exit → merge → complete** sequence, in order (§4.3–4.4);
//! * under dirty-range transfers, every enqueued transfer ships exactly
//!   its **coalesced dirty payload plus the status message** — no
//!   over- or under-shipping;
//! * under pipelined execution (the enqueue record carries the pipeline
//!   depth), shipped batches — plain transfers and
//!   [`TraceKind::CoalescedSend`] events alike — still pair the k-th
//!   status with the k-th send, carry exactly the next unshipped completed
//!   subkernels, and keep their **per-batch boundaries strictly
//!   descending**; a coalesced send must carry at least two subkernels and
//!   may not appear in a serial (depth-1) trace.
//!
//! When the trace contains fault or recovery events
//! ([`TraceKind::TransferFault`], [`TraceKind::TransferRejected`],
//! [`TraceKind::TransferTimeout`], [`TraceKind::DeviceLost`],
//! [`TraceKind::DegradedRun`]) the linter switches to a *recovery-aware*
//! mode: retried and resent transfers may repeat boundaries out of the
//! strict descent order, a truncated trace is legal as long as it is
//! consistent with the recorded recovery (a lost CPU may leave its killed
//! subkernel open; a lost GPU finishes without exit or merge, by the CPU),
//! and a degraded single-device span replaces the co-execution shape
//! entirely. Everything that is *not* explained by a recorded recovery
//! event is still an error — faults excuse exactly the damage they cause.
//!
//! [`lint_trace`] checks a bare event log; [`lint_report`] additionally
//! cross-checks the log against the [`KernelReport`] counters. The runtime
//! calls `lint_report` after every co-executed kernel when
//! [`FluidiclConfig::validate_protocol`](crate::FluidiclConfig) is set
//! (the default in debug and test builds) and fails the enqueue with
//! [`ClError::ProtocolViolation`](fluidicl_vcl::ClError) on any error.

use std::fmt;

use fluidicl_des::SimTime;
use fluidicl_vcl::DeviceKind;

use crate::stats::{Finisher, KernelReport};
use crate::trace::{TraceEvent, TraceKind, STATUS_MSG_BYTES};

/// How bad a lint finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintSeverity {
    /// Suspicious but not provably wrong.
    Warning,
    /// A protocol invariant is violated; results cannot be trusted.
    Error,
}

/// One finding of the protocol linter (or of the `fluidicl-check` access
/// sanitizer, which reuses the same diagnostic vocabulary).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// Stable rule identifier (e.g. `watermark-monotone`).
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: LintSeverity,
    /// Human-readable description.
    pub message: String,
}

impl LintDiagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(rule: &'static str, message: impl Into<String>) -> Self {
        LintDiagnostic {
            rule,
            severity: LintSeverity::Error,
            message: message.into(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(rule: &'static str, message: impl Into<String>) -> Self {
        LintDiagnostic {
            rule,
            severity: LintSeverity::Warning,
            message: message.into(),
        }
    }
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            LintSeverity::Warning => "warning",
            LintSeverity::Error => "error",
        };
        write!(f, "[{sev}] {}: {}", self.rule, self.message)
    }
}

/// Lints a protocol trace. Returns every violated invariant; an empty vector
/// means the trace is a legal FluidiCL execution.
///
/// The trace must be chronologically sorted with ties in processing order —
/// exactly what the engine stores in [`KernelReport::trace`].
pub fn lint_trace(events: &[TraceEvent]) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    let Some(first) = events.first() else {
        out.push(LintDiagnostic::error("trace-shape", "trace is empty"));
        return out;
    };
    let TraceKind::Enqueued {
        total_wgs: total,
        pipeline_depth: depth,
    } = first.kind
    else {
        out.push(LintDiagnostic::error(
            "trace-shape",
            format!(
                "first event is `{}`, expected the enqueue record",
                first.kind
            ),
        ));
        return out;
    };

    // Pre-scan for fault/recovery events: their presence switches the
    // replay into recovery-aware mode (see the module docs).
    let mut lost_gpu = false;
    let mut lost_cpu = false;
    let mut degraded = false;
    let mut relaxed = false;
    for e in events {
        match &e.kind {
            TraceKind::TransferFault { .. }
            | TraceKind::TransferRejected { .. }
            | TraceKind::TransferTimeout { .. } => relaxed = true,
            TraceKind::DeviceLost { device } => {
                relaxed = true;
                match device {
                    DeviceKind::Gpu => lost_gpu = true,
                    DeviceKind::Cpu => lost_cpu = true,
                }
            }
            TraceKind::DegradedRun { .. } | TraceKind::EpDegradedRun { .. } => {
                relaxed = true;
                degraded = true;
            }
            TraceKind::OwnerPromoted { .. } | TraceKind::EpochRejected { .. } => relaxed = true,
            _ => {}
        }
    }
    // Graph-scheduled peer-lane nodes have their own three-event shape
    // (the owner-lane nodes of a flushed graph keep the legacy co-execution
    // vocabulary and replay below as usual).
    if events
        .iter()
        .any(|e| matches!(&e.kind, TraceKind::GraphRun { .. }))
    {
        return lint_graph(events, total, out);
    }
    if degraded {
        return lint_degraded(events, total, out);
    }
    // N-device traces use the dev-tagged event vocabulary throughout; their
    // invariants (per-endpoint pairing, frontier disjointness, coverage
    // watermark) are replayed separately. Two-device traces never contain
    // these events, so the legacy replay below is untouched.
    if events.iter().any(|e| {
        matches!(
            &e.kind,
            TraceKind::EpSubkernelStart { .. }
                | TraceKind::EpSubkernelDone { .. }
                | TraceKind::EpSend { .. }
                | TraceKind::EpStatus { .. }
                | TraceKind::EpTransferFault { .. }
                | TraceKind::EpTransferRejected { .. }
                | TraceKind::EpTransferTimeout { .. }
                | TraceKind::NonOwnerLost { .. }
                | TraceKind::OwnerPromoted { .. }
                | TraceKind::EpochRejected { .. }
        )
    }) {
        let relaxed_multi = relaxed
            || events.iter().any(|e| {
                matches!(
                    &e.kind,
                    TraceKind::EpTransferFault { .. }
                        | TraceKind::EpTransferRejected { .. }
                        | TraceKind::EpTransferTimeout { .. }
                        | TraceKind::NonOwnerLost { .. }
                        | TraceKind::OwnerPromoted { .. }
                        | TraceKind::EpochRejected { .. }
                )
            });
        return lint_multidev(events, total, depth, relaxed_multi, out);
    }

    let mut prev_at = first.at;
    // Watermark replay: statuses are the only events that move it.
    let mut watermark = total;
    // In-order hd queue: (send time, boundary) of every enqueued transfer.
    let mut hd_sends: Vec<(SimTime, u64)> = Vec::new();
    let mut statuses_seen = 0usize;
    // GPU wave replay.
    let mut expected_next = 0u64;
    let mut open_wave: Option<(u64, u64)> = None;
    let mut wave_aborted = false;
    let mut launches = 0usize;
    let mut exec_ranges: Vec<(u64, u64)> = Vec::new();
    let mut exit_at: Option<SimTime> = None;
    let mut merge_at: Option<SimTime> = None;
    // CPU subkernel replay.
    let mut open_sub: Option<(u64, u64)> = None;
    let mut next_sub_to = total;
    let mut last_completed_from: Option<u64> = None;
    let mut done_subs: Vec<(SimTime, u64, u64)> = Vec::new();
    // Pipelined shipping replay: how many completed subkernels earlier
    // sends (single or coalesced) have already carried to the GPU.
    let mut shipped_subs = 0usize;
    let mut completes: Vec<(SimTime, Finisher)> = Vec::new();
    let mut gpu_lost_seen = false;
    let mut cpu_lost_seen = false;

    for e in &events[1..] {
        if e.at < prev_at {
            out.push(LintDiagnostic::error(
                "chronology",
                format!("event `{}` is timestamped before its predecessor", e.kind),
            ));
        }
        prev_at = e.at;
        let exited = exit_at.is_some();
        match &e.kind {
            TraceKind::Enqueued { .. } => {
                out.push(LintDiagnostic::error(
                    "trace-shape",
                    "duplicate enqueue record",
                ));
            }
            TraceKind::GpuLaunch => {
                launches += 1;
                if launches > 1 {
                    out.push(LintDiagnostic::error("trace-shape", "gpu launched twice"));
                }
                if exited {
                    out.push(LintDiagnostic::error(
                        "gpu-exit",
                        "gpu launch recorded after the gpu exit",
                    ));
                }
            }
            TraceKind::GpuWaveStart { from, to } => {
                if exited {
                    out.push(LintDiagnostic::error(
                        "gpu-exit",
                        format!("wave {from}..{to} started after the gpu exit"),
                    ));
                }
                if wave_aborted {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave {from}..{to} started after an abort; the gpu must exit next"),
                    ));
                }
                if open_wave.is_some() {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave {from}..{to} started while another wave is running"),
                    ));
                }
                if *from != expected_next {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave starts at {from}, expected {expected_next}"),
                    ));
                }
                if from >= to {
                    out.push(LintDiagnostic::error(
                        "wave-bounds",
                        format!("wave {from}..{to} is empty or reversed"),
                    ));
                }
                let limit = watermark.min(total);
                if *to > limit {
                    out.push(LintDiagnostic::error(
                        "wave-bounds",
                        format!(
                            "wave {from}..{to} runs past the watermark {limit} known at its start"
                        ),
                    ));
                }
                open_wave = Some((*from, *to));
            }
            TraceKind::GpuWaveDone {
                from,
                to,
                executed_to,
            } => match open_wave.take() {
                Some((wf, wt)) if wf == *from && wt == *to => {
                    if executed_to < from || executed_to > to {
                        out.push(LintDiagnostic::error(
                            "wave-bounds",
                            format!("wave {from}..{to} reports executing up to {executed_to}"),
                        ));
                    }
                    if *executed_to > *from {
                        exec_ranges.push((*from, *executed_to));
                    }
                    expected_next = *to;
                }
                other => {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave {from}..{to} finished but {other:?} was running"),
                    ));
                }
            },
            TraceKind::GpuWaveAborted { from, to } => match open_wave.take() {
                Some((wf, wt)) if wf == *from && wt == *to => {
                    wave_aborted = true;
                    if watermark > *from {
                        out.push(LintDiagnostic::error(
                            "wave-bounds",
                            format!(
                                "wave {from}..{to} aborted although the watermark {watermark} \
                                 had not covered it"
                            ),
                        ));
                    }
                }
                other => {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave {from}..{to} aborted but {other:?} was running"),
                    ));
                }
            },
            TraceKind::GpuExit => {
                if exited {
                    out.push(LintDiagnostic::error("gpu-exit", "gpu exited twice"));
                } else {
                    if let Some((wf, wt)) = open_wave {
                        out.push(LintDiagnostic::error(
                            "gpu-exit",
                            format!("gpu exited while wave {wf}..{wt} is still running"),
                        ));
                    }
                    let limit = watermark.min(total);
                    if expected_next < limit {
                        out.push(LintDiagnostic::error(
                            "gpu-exit",
                            format!(
                                "gpu exited at work-group {expected_next}, below the \
                                 watermark {limit}"
                            ),
                        ));
                    }
                    exit_at = Some(e.at);
                }
            }
            TraceKind::MergeDone => {
                if merge_at.is_some() {
                    out.push(LintDiagnostic::error("merge", "diff-merge completed twice"));
                } else {
                    if exit_at.is_none() {
                        out.push(LintDiagnostic::error(
                            "merge",
                            "diff-merge completed before the gpu exited",
                        ));
                    }
                    merge_at = Some(e.at);
                }
            }
            TraceKind::CpuSubkernelStart { from, to, .. } => {
                if exited {
                    out.push(LintDiagnostic::error(
                        "cpu-contiguity",
                        format!("subkernel {from}..{to} started after the gpu exit"),
                    ));
                }
                if open_sub.is_some() {
                    out.push(LintDiagnostic::error(
                        "cpu-contiguity",
                        format!("subkernel {from}..{to} started while another is running"),
                    ));
                }
                if *to != next_sub_to {
                    out.push(LintDiagnostic::error(
                        "cpu-contiguity",
                        format!(
                            "subkernel {from}..{to} breaks the descent; expected it to end \
                             at {next_sub_to}"
                        ),
                    ));
                }
                if from >= to {
                    out.push(LintDiagnostic::error(
                        "cpu-contiguity",
                        format!("subkernel {from}..{to} is empty or reversed"),
                    ));
                }
                next_sub_to = *from;
                open_sub = Some((*from, *to));
            }
            TraceKind::CpuSubkernelDone { from, to } => match open_sub.take() {
                Some((sf, st)) if sf == *from && st == *to => {
                    last_completed_from = Some(*from);
                    done_subs.push((e.at, *from, *to));
                }
                other => {
                    out.push(LintDiagnostic::error(
                        "cpu-contiguity",
                        format!("subkernel {from}..{to} finished but {other:?} was running"),
                    ));
                }
            },
            TraceKind::HdEnqueued {
                boundary,
                bytes,
                dirty_bytes,
            }
            | TraceKind::CoalescedSend {
                boundary,
                bytes,
                dirty_bytes,
                ..
            } => {
                let batch = match &e.kind {
                    TraceKind::CoalescedSend { subkernels, .. } => *subkernels as usize,
                    _ => 1,
                };
                if let TraceKind::CoalescedSend { subkernels, .. } = &e.kind {
                    // A coalesced send exists precisely because more than
                    // one copy queued up behind a busy link; a singleton
                    // batch must have been recorded as a plain transfer.
                    if *subkernels < 2 {
                        out.push(LintDiagnostic::error(
                            "coalesced-send",
                            format!(
                                "coalesced send (boundary {boundary}) carries {subkernels} \
                                 subkernels, expected at least 2"
                            ),
                        ));
                    }
                    if depth <= 1 {
                        out.push(LintDiagnostic::error(
                            "coalesced-send",
                            format!(
                                "coalesced send (boundary {boundary}) in a serial trace \
                                 (pipeline depth {depth})"
                            ),
                        ));
                    }
                }
                // Byte accounting under dirty-range transfers: the data
                // message is exactly the coalesced dirty payload, followed
                // by the fixed-size status message.
                if let Some(d) = dirty_bytes {
                    if *bytes != d + STATUS_MSG_BYTES {
                        out.push(LintDiagnostic::error(
                            "transfer-bytes",
                            format!(
                                "transfer (boundary {boundary}) ships {bytes} B but its dirty \
                                 payload is {d} B + {STATUS_MSG_BYTES} B status"
                            ),
                        ));
                    }
                }
                if exited {
                    out.push(LintDiagnostic::error(
                        "data-before-status",
                        format!("transfer (boundary {boundary}) enqueued after the gpu exit"),
                    ));
                }
                if relaxed {
                    // Retries and resends re-ship an older boundary after
                    // newer subkernels completed: any completed subkernel
                    // start is a legal boundary under recovery.
                    if !done_subs.iter().any(|(_, f, _)| f == boundary) {
                        out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "transfer carries boundary {boundary} but no completed \
                                 subkernel starts there"
                            ),
                        ));
                    }
                } else if depth <= 1 {
                    match last_completed_from {
                        None => out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "transfer (boundary {boundary}) enqueued before any subkernel \
                                 completed"
                            ),
                        )),
                        Some(f) if f != *boundary => out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "transfer carries boundary {boundary} but the last completed \
                                 subkernel starts at {f}"
                            ),
                        )),
                        Some(_) => {}
                    }
                } else {
                    // Pipelined fault-free shipping: copies complete in
                    // subkernel-completion order, so the k-th shipped batch
                    // carries exactly the next `batch` completed-but-
                    // unshipped subkernels and its boundary is the lowest
                    // (last) of their starts. Boundaries therefore still
                    // strictly descend per batch.
                    match done_subs.get((shipped_subs + batch).saturating_sub(1)) {
                        None => out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "transfer batch of {batch} (boundary {boundary}) outruns the \
                                 {} completed subkernels",
                                done_subs.len()
                            ),
                        )),
                        Some((_, f, _)) if f != boundary => out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "transfer batch of {batch} carries boundary {boundary} but the \
                                 batch's last unshipped subkernel starts at {f}"
                            ),
                        )),
                        Some(_) => {}
                    }
                    shipped_subs += batch;
                }
                hd_sends.push((e.at, *boundary));
            }
            TraceKind::StatusArrived { boundary } => {
                if exited {
                    out.push(LintDiagnostic::error(
                        "gpu-exit",
                        format!("status (boundary {boundary}) arrived after the gpu exit"),
                    ));
                }
                if relaxed {
                    // Failed sends produce no status and resends duplicate
                    // boundaries, so index pairing no longer holds. The
                    // surviving invariant: every accepted status must follow
                    // a transfer that carried its boundary.
                    if !hd_sends
                        .iter()
                        .any(|(sent_at, b)| b == boundary && *sent_at <= e.at)
                    {
                        out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "status (boundary {boundary}) arrived without a prior \
                                 transfer carrying it"
                            ),
                        ));
                    }
                } else {
                    match hd_sends.get(statuses_seen) {
                        None => out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "status (boundary {boundary}) arrived without a matching \
                                 enqueued transfer"
                            ),
                        )),
                        Some((sent_at, sent_boundary)) => {
                            if sent_boundary != boundary {
                                out.push(LintDiagnostic::error(
                                    "data-before-status",
                                    format!(
                                        "status boundary {boundary} does not match the in-order \
                                         queue (transfer {statuses_seen} carried \
                                         {sent_boundary})"
                                    ),
                                ));
                            }
                            if e.at < *sent_at {
                                out.push(LintDiagnostic::error(
                                    "data-before-status",
                                    format!(
                                        "status (boundary {boundary}) arrived before it was sent"
                                    ),
                                ));
                            }
                        }
                    }
                }
                statuses_seen += 1;
                if *boundary > watermark {
                    out.push(LintDiagnostic::error(
                        "watermark-monotone",
                        format!("watermark rose from {watermark} to {boundary}"),
                    ));
                }
                watermark = watermark.min(*boundary);
            }
            TraceKind::KernelComplete { finisher } => {
                completes.push((e.at, *finisher));
            }
            TraceKind::TransferFault { boundary, .. }
            | TraceKind::TransferRejected { boundary }
            | TraceKind::TransferTimeout { boundary } => {
                if !hd_sends.iter().any(|(_, b)| b == boundary) {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!(
                            "transfer fault reported for boundary {boundary} but no \
                             enqueued transfer carried it"
                        ),
                    ));
                }
            }
            TraceKind::DeviceLost { device } => {
                let seen = match device {
                    DeviceKind::Gpu => &mut gpu_lost_seen,
                    DeviceKind::Cpu => &mut cpu_lost_seen,
                };
                if *seen {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!("device {device:?} was declared lost twice"),
                    ));
                }
                *seen = true;
            }
            TraceKind::DegradedRun { .. } => {
                out.push(LintDiagnostic::error(
                    "trace-shape",
                    "degraded single-device span inside a co-executed trace",
                ));
            }
            // Multi-device events were dispatched to `lint_multidev` above;
            // reaching here means a stray dev-tagged event in an otherwise
            // legacy trace, which the dispatch predicate makes impossible.
            TraceKind::EpSubkernelStart { .. }
            | TraceKind::EpSubkernelDone { .. }
            | TraceKind::EpSend { .. }
            | TraceKind::EpStatus { .. }
            | TraceKind::EpTransferFault { .. }
            | TraceKind::EpTransferRejected { .. }
            | TraceKind::EpTransferTimeout { .. }
            | TraceKind::NonOwnerLost { .. }
            | TraceKind::OwnerPromoted { .. }
            | TraceKind::EpochRejected { .. } => unreachable!("dispatched to lint_multidev"),
            // Peer-degraded spans were dispatched to `lint_degraded` above.
            TraceKind::EpDegradedRun { .. } => unreachable!("dispatched to lint_degraded"),
            // Graph-node spans were dispatched to `lint_graph` above.
            TraceKind::GraphRun { .. } => unreachable!("dispatched to lint_graph"),
        }
    }

    if launches == 0 && total > 0 {
        out.push(LintDiagnostic::error(
            "trace-shape",
            "gpu was never launched",
        ));
    }
    if let Some((sf, st)) = open_sub {
        // A lost CPU legally leaves exactly its killed subkernel open.
        if !lost_cpu {
            out.push(LintDiagnostic::error(
                "cpu-contiguity",
                format!("subkernel {sf}..{st} never completed"),
            ));
        }
    }
    if lost_gpu {
        // A lost GPU never exits and never merges: the CPU scheduler keeps
        // descending and finishes the whole NDRange alone (engine
        // `finish_after_gpu_loss`), so completion and coverage are judged
        // against the CPU subkernel log instead.
        if exit_at.is_some() {
            out.push(LintDiagnostic::error(
                "recovery",
                "gpu exited although it was declared lost",
            ));
        }
        if merge_at.is_some() {
            out.push(LintDiagnostic::error(
                "recovery",
                "diff-merge completed although the gpu was lost",
            ));
        }
        match completes.as_slice() {
            [(at, Finisher::Cpu)] => {
                if !done_subs.iter().any(|(t, f, _)| *f == 0 && t == at) {
                    out.push(LintDiagnostic::error(
                        "completion",
                        "cpu finisher without a subkernel reaching work-group 0 at that time",
                    ));
                }
            }
            [(_, Finisher::Gpu)] => out.push(LintDiagnostic::error(
                "completion",
                "a kernel whose gpu was lost cannot be finished by the gpu",
            )),
            [] => out.push(LintDiagnostic::error(
                "completion",
                "kernel never completed",
            )),
            _ => out.push(LintDiagnostic::error(
                "completion",
                "kernel completed more than once",
            )),
        }
        let mut covered: Vec<(u64, u64)> = done_subs.iter().map(|(_, f, t)| (*f, *t)).collect();
        covered.sort_unstable();
        let mut reach = 0u64;
        for (from, to) in covered {
            if from > reach {
                out.push(LintDiagnostic::error(
                    "coverage",
                    format!("work-groups {reach}..{from} were never executed by the cpu"),
                ));
            }
            reach = reach.max(to);
        }
        if reach < total {
            out.push(LintDiagnostic::error(
                "coverage",
                format!("work-groups {reach}..{total} were never executed by the cpu"),
            ));
        }
        return out;
    }
    if let Some((wf, wt)) = open_wave {
        if exit_at.is_none() {
            out.push(LintDiagnostic::error(
                "gpu-exit",
                format!("wave {wf}..{wt} never completed and the gpu never exited"),
            ));
        }
    }
    let Some(exit) = exit_at else {
        out.push(LintDiagnostic::error("gpu-exit", "gpu never exited"));
        return out;
    };
    let Some(merge) = merge_at else {
        out.push(LintDiagnostic::error("merge", "diff-merge never completed"));
        return out;
    };
    if merge < exit {
        out.push(LintDiagnostic::error(
            "merge",
            "diff-merge completed before the gpu exit",
        ));
    }
    match completes.as_slice() {
        [(at, Finisher::Gpu)] => {
            if *at != merge {
                out.push(LintDiagnostic::error(
                    "completion",
                    "gpu-finished kernel must complete exactly at merge time",
                ));
            }
        }
        [(at, Finisher::Cpu)] => {
            if *at >= merge {
                out.push(LintDiagnostic::error(
                    "completion",
                    "cpu-finished kernel must complete strictly before the merge",
                ));
            }
            if !done_subs.iter().any(|(t, f, _)| *f == 0 && t == at) {
                out.push(LintDiagnostic::error(
                    "completion",
                    "cpu finisher without a subkernel reaching work-group 0 at that time",
                ));
            }
        }
        [] => out.push(LintDiagnostic::error(
            "completion",
            "kernel never completed",
        )),
        _ => out.push(LintDiagnostic::error(
            "completion",
            "kernel completed more than once",
        )),
    }

    // Coverage: gpu-executed ranges plus the merged region [watermark, total)
    // must cover every work-group.
    let mut covered = exec_ranges;
    if watermark < total {
        covered.push((watermark, total));
    }
    covered.sort_unstable();
    let mut reach = 0u64;
    for (from, to) in covered {
        if from > reach {
            out.push(LintDiagnostic::error(
                "coverage",
                format!("work-groups {reach}..{from} were never executed by either device"),
            ));
        }
        reach = reach.max(to);
    }
    if reach < total {
        out.push(LintDiagnostic::error(
            "coverage",
            format!("work-groups {reach}..{total} were never executed by either device"),
        ));
    }
    out
}

/// One enqueued send in the multi-device replay: `(at, boundary, consumed
/// ranges)`.
type EpSendRec = (SimTime, u64, Vec<(u64, u64)>);

/// Per-endpoint replay state of the multi-device linter.
#[derive(Default)]
struct EpReplay {
    open_sub: Option<(u64, u64)>,
    /// Completed subkernels `(at, from, to)` in completion order.
    done: Vec<(SimTime, u64, u64)>,
    /// How many completed subkernels earlier sends already carried.
    shipped: usize,
    /// Every send in enqueue order.
    sends: Vec<EpSendRec>,
    statuses: usize,
    lost: bool,
}

/// Lints an N-device trace: the dev-tagged vocabulary recorded whenever
/// more than one non-owner endpoint co-executes. Replays, per endpoint,
/// the subkernel pairing and the send/status queue; globally, the frontier
/// claim disjointness, the coverage watermark, and the owner's wave walk.
///
/// `relaxed` mirrors the legacy linter's recovery-aware mode: retries,
/// resends and endpoint losses excuse exactly the reordering they cause
/// (claims may re-cover a lost endpoint's ranges, statuses may apply out
/// of send order behind a redelivery), and nothing else.
fn lint_multidev(
    events: &[TraceEvent],
    total: u64,
    depth: u32,
    relaxed: bool,
    mut out: Vec<LintDiagnostic>,
) -> Vec<LintDiagnostic> {
    use std::collections::BTreeMap;

    let mut prev_at = events[0].at;
    let mut eps: BTreeMap<u32, EpReplay> = BTreeMap::new();
    // All claimed ranges with their claimant, for frontier disjointness.
    let mut claims: Vec<(u64, u64, u32)> = Vec::new();
    let mut lost_devs: Vec<u32> = Vec::new();
    // Owner-failover replay: every promotion hands the owner role to a
    // surviving peer, bumps the epoch, and restarts the wave walk from 0.
    let mut promotions = 0usize;
    let mut gpu_losses = 0usize;
    let mut promoted_devs: Vec<u32> = Vec::new();
    // Watermark replay: EpStatus events carry the engine's value; the
    // linter recomputes it from delivered ranges and cross-checks.
    let mut watermark = total;
    let mut coverage = crate::frontier::Coverage::new(total);
    // Delivered-and-credited ranges per endpoint. Owner failover
    // un-credits the promoted endpoint's deliveries, so the post-promotion
    // watermark is the covered suffix of the *other* endpoints' ranges —
    // this map is what lets the replay rebuild it exactly.
    let mut applied_by_dev: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    // GPU wave replay, identical to the two-device linter.
    let mut expected_next = 0u64;
    let mut open_wave: Option<(u64, u64)> = None;
    let mut launches = 0usize;
    let mut exec_ranges: Vec<(u64, u64)> = Vec::new();
    let mut exit_at: Option<SimTime> = None;
    let mut merge_at: Option<SimTime> = None;
    let mut completes: Vec<(SimTime, Finisher)> = Vec::new();

    for e in &events[1..] {
        if e.at < prev_at {
            out.push(LintDiagnostic::error(
                "chronology",
                format!("event `{}` is timestamped before its predecessor", e.kind),
            ));
        }
        prev_at = e.at;
        let exited = exit_at.is_some();
        match &e.kind {
            TraceKind::Enqueued { .. } => {
                out.push(LintDiagnostic::error(
                    "trace-shape",
                    "duplicate enqueue record",
                ));
            }
            TraceKind::GpuLaunch => {
                launches += 1;
                // Each promotion legally relaunches the owner walk once.
                if launches > promotions + 1 {
                    out.push(LintDiagnostic::error("trace-shape", "gpu launched twice"));
                }
            }
            TraceKind::GpuWaveStart { from, to } => {
                if exited {
                    out.push(LintDiagnostic::error(
                        "gpu-exit",
                        format!("wave {from}..{to} started after the gpu exit"),
                    ));
                }
                if open_wave.is_some() {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave {from}..{to} started while another wave is running"),
                    ));
                }
                if *from != expected_next {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave starts at {from}, expected {expected_next}"),
                    ));
                }
                if from >= to {
                    out.push(LintDiagnostic::error(
                        "wave-bounds",
                        format!("wave {from}..{to} is empty or reversed"),
                    ));
                }
                let limit = watermark.min(total);
                if *to > limit {
                    out.push(LintDiagnostic::error(
                        "wave-bounds",
                        format!(
                            "wave {from}..{to} runs past the watermark {limit} known at its start"
                        ),
                    ));
                }
                open_wave = Some((*from, *to));
            }
            TraceKind::GpuWaveDone {
                from,
                to,
                executed_to,
            } => match open_wave.take() {
                Some((wf, wt)) if wf == *from && wt == *to => {
                    if executed_to < from || executed_to > to {
                        out.push(LintDiagnostic::error(
                            "wave-bounds",
                            format!("wave {from}..{to} reports executing up to {executed_to}"),
                        ));
                    }
                    if *executed_to > *from {
                        exec_ranges.push((*from, *executed_to));
                    }
                    expected_next = *to;
                }
                other => {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave {from}..{to} finished but {other:?} was running"),
                    ));
                }
            },
            TraceKind::GpuWaveAborted { from, to } => match open_wave.take() {
                Some((wf, wt)) if wf == *from && wt == *to => {
                    if watermark > *from {
                        out.push(LintDiagnostic::error(
                            "wave-bounds",
                            format!(
                                "wave {from}..{to} aborted although the watermark {watermark} \
                                 had not covered it"
                            ),
                        ));
                    }
                }
                other => {
                    out.push(LintDiagnostic::error(
                        "wave-contiguity",
                        format!("wave {from}..{to} aborted but {other:?} was running"),
                    ));
                }
            },
            TraceKind::GpuExit => {
                if exited {
                    out.push(LintDiagnostic::error("gpu-exit", "gpu exited twice"));
                } else {
                    if let Some((wf, wt)) = open_wave {
                        out.push(LintDiagnostic::error(
                            "gpu-exit",
                            format!("gpu exited while wave {wf}..{wt} is still running"),
                        ));
                    }
                    let limit = watermark.min(total);
                    if expected_next < limit {
                        out.push(LintDiagnostic::error(
                            "gpu-exit",
                            format!(
                                "gpu exited at work-group {expected_next}, below the \
                                 watermark {limit}"
                            ),
                        ));
                    }
                    exit_at = Some(e.at);
                }
            }
            TraceKind::MergeDone => {
                if merge_at.is_some() {
                    out.push(LintDiagnostic::error("merge", "diff-merge completed twice"));
                } else {
                    if exit_at.is_none() {
                        out.push(LintDiagnostic::error(
                            "merge",
                            "diff-merge completed before the gpu exited",
                        ));
                    }
                    merge_at = Some(e.at);
                }
            }
            TraceKind::EpSubkernelStart { dev, from, to, .. } => {
                if exited {
                    out.push(LintDiagnostic::error(
                        "ep-pairing",
                        format!("ep{dev} subkernel {from}..{to} started after the gpu exit"),
                    ));
                }
                if from >= to || *to > total {
                    out.push(LintDiagnostic::error(
                        "ep-pairing",
                        format!("ep{dev} subkernel {from}..{to} is empty, reversed or oversized"),
                    ));
                }
                let ep = eps.entry(*dev).or_default();
                if ep.open_sub.is_some() {
                    out.push(LintDiagnostic::error(
                        "ep-pairing",
                        format!(
                            "ep{dev} subkernel {from}..{to} started while another is running \
                             on the same endpoint"
                        ),
                    ));
                }
                ep.open_sub = Some((*from, *to));
                if promoted_devs.contains(dev) {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!(
                            "ep{dev} subkernel {from}..{to} started after its promotion to owner"
                        ),
                    ));
                }
                // Frontier disjointness: a claim may only overlap a range a
                // *lost* or *promoted* endpoint claimed — the frontier
                // returned it (promotion re-enqueues un-acked claims).
                for (cf, ct, cdev) in &claims {
                    if from < ct
                        && cf < to
                        && !lost_devs.contains(cdev)
                        && !promoted_devs.contains(cdev)
                    {
                        out.push(LintDiagnostic::error(
                            "claim-disjoint",
                            format!(
                                "ep{dev} claim {from}..{to} overlaps ep{cdev} claim {cf}..{ct} \
                                 although ep{cdev} was never lost"
                            ),
                        ));
                    }
                }
                claims.push((*from, *to, *dev));
            }
            TraceKind::EpSubkernelDone { dev, from, to } => {
                let ep = eps.entry(*dev).or_default();
                match ep.open_sub.take() {
                    Some((sf, st)) if sf == *from && st == *to => {
                        ep.done.push((e.at, *from, *to));
                    }
                    other => {
                        out.push(LintDiagnostic::error(
                            "ep-pairing",
                            format!(
                                "ep{dev} subkernel {from}..{to} finished but {other:?} was \
                                 running on that endpoint"
                            ),
                        ));
                    }
                }
            }
            TraceKind::EpSend {
                dev,
                boundary,
                bytes,
                dirty_bytes,
                subkernels,
            } => {
                if exited {
                    out.push(LintDiagnostic::error(
                        "data-before-status",
                        format!(
                            "ep{dev} transfer (boundary {boundary}) enqueued after the gpu exit"
                        ),
                    ));
                }
                if promoted_devs.contains(dev) {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!(
                            "ep{dev} transfer (boundary {boundary}) enqueued after its \
                             promotion to owner"
                        ),
                    ));
                }
                if *subkernels == 0 {
                    out.push(LintDiagnostic::error(
                        "data-before-status",
                        format!("ep{dev} transfer (boundary {boundary}) carries no subkernels"),
                    ));
                }
                if *subkernels > 1 && depth <= 1 {
                    out.push(LintDiagnostic::error(
                        "coalesced-send",
                        format!(
                            "ep{dev} batch of {subkernels} subkernels in a serial trace \
                             (pipeline depth {depth})"
                        ),
                    ));
                }
                if let Some(d) = dirty_bytes {
                    if *bytes != d + STATUS_MSG_BYTES {
                        out.push(LintDiagnostic::error(
                            "transfer-bytes",
                            format!(
                                "ep{dev} transfer (boundary {boundary}) ships {bytes} B but its \
                                 dirty payload is {d} B + {STATUS_MSG_BYTES} B status"
                            ),
                        ));
                    }
                }
                let ep = eps.entry(*dev).or_default();
                let batch = *subkernels as usize;
                if relaxed {
                    // Resends repeat already-shipped ranges; the surviving
                    // invariant is that the boundary names one of this
                    // endpoint's completed subkernels.
                    if !ep.done.iter().any(|(_, f, _)| f == boundary) {
                        out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "ep{dev} transfer carries boundary {boundary} but no completed \
                                 subkernel of that endpoint starts there"
                            ),
                        ));
                    }
                    // Reconstruct the batch for the credit ledger: a send
                    // (and any resend of it) carries a consecutive
                    // completion-order window of this endpoint's done
                    // subkernels whose lowest start is the boundary.
                    let consumed: Vec<(u64, u64)> = if batch == 0 || batch > ep.done.len() {
                        Vec::new()
                    } else {
                        (0..=ep.done.len() - batch)
                            .map(|i| &ep.done[i..i + batch])
                            .find(|w| {
                                w.iter().all(|(at, _, _)| *at <= e.at)
                                    && w.iter().map(|(_, f, _)| *f).min() == Some(*boundary)
                            })
                            .map(|w| w.iter().map(|(_, f, t)| (*f, *t)).collect())
                            .unwrap_or_default()
                    };
                    ep.sends.push((e.at, *boundary, consumed));
                } else {
                    // Fault-free shipping consumes this endpoint's completed
                    // subkernels strictly in completion order; the boundary
                    // is the lowest start in the batch.
                    let end = ep.shipped + batch;
                    if end > ep.done.len() {
                        out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "ep{dev} batch of {batch} (boundary {boundary}) outruns the \
                                 {} completed subkernels of that endpoint",
                                ep.done.len()
                            ),
                        ));
                        ep.sends.push((e.at, *boundary, Vec::new()));
                    } else {
                        let consumed: Vec<(u64, u64)> = ep.done[ep.shipped..end]
                            .iter()
                            .map(|(_, f, t)| (*f, *t))
                            .collect();
                        let lowest = consumed.iter().map(|(f, _)| *f).min().unwrap_or(total);
                        if lowest != *boundary {
                            out.push(LintDiagnostic::error(
                                "data-before-status",
                                format!(
                                    "ep{dev} batch of {batch} carries boundary {boundary} but \
                                     its lowest subkernel starts at {lowest}"
                                ),
                            ));
                        }
                        ep.sends.push((e.at, *boundary, consumed));
                        ep.shipped = end;
                    }
                }
            }
            TraceKind::EpStatus {
                dev,
                boundary,
                watermark: wm,
            } => {
                if exited {
                    out.push(LintDiagnostic::error(
                        "gpu-exit",
                        format!("ep{dev} status (boundary {boundary}) arrived after the gpu exit"),
                    ));
                }
                if *wm > watermark {
                    out.push(LintDiagnostic::error(
                        "watermark-monotone",
                        format!("watermark rose from {watermark} to {wm}"),
                    ));
                }
                let ep = eps.entry(*dev).or_default();
                if relaxed {
                    match ep
                        .sends
                        .iter()
                        .find(|(sent_at, b, _)| b == boundary && *sent_at <= e.at)
                    {
                        None => out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "ep{dev} status (boundary {boundary}) arrived without a prior \
                                 transfer carrying it"
                            ),
                        )),
                        Some((_, _, ranges)) => {
                            // A retry re-ships the same subkernels, so any
                            // send matching the boundary carries the same
                            // ranges — good enough for the credit ledger.
                            let credited = applied_by_dev.entry(*dev).or_default();
                            for &(f, t) in ranges {
                                if f < t && t <= total {
                                    credited.push((f, t));
                                }
                            }
                        }
                    }
                } else {
                    match ep.sends.get(ep.statuses) {
                        None => out.push(LintDiagnostic::error(
                            "data-before-status",
                            format!(
                                "ep{dev} status (boundary {boundary}) arrived without a \
                                 matching enqueued transfer"
                            ),
                        )),
                        Some((sent_at, sent_boundary, ranges)) => {
                            if sent_boundary != boundary {
                                out.push(LintDiagnostic::error(
                                    "data-before-status",
                                    format!(
                                        "ep{dev} status boundary {boundary} does not match its \
                                         in-order queue (transfer {} carried {sent_boundary})",
                                        ep.statuses
                                    ),
                                ));
                            }
                            if e.at < *sent_at {
                                out.push(LintDiagnostic::error(
                                    "data-before-status",
                                    format!(
                                        "ep{dev} status (boundary {boundary}) arrived before \
                                         it was sent"
                                    ),
                                ));
                            }
                            let credited = applied_by_dev.entry(*dev).or_default();
                            for (f, t) in ranges {
                                // Out-of-bounds ranges were already reported
                                // at their claim; never feed them to the
                                // coverage set (its bounds are asserted).
                                if f < t && *t <= total {
                                    coverage.add(*f, *t);
                                    credited.push((*f, *t));
                                }
                            }
                            let suffix = coverage.suffix_start();
                            if *wm != suffix {
                                out.push(LintDiagnostic::error(
                                    "watermark-monotone",
                                    format!(
                                        "ep{dev} status reports watermark {wm} but the \
                                         delivered ranges put the covered suffix at {suffix}"
                                    ),
                                ));
                            }
                        }
                    }
                }
                ep.statuses += 1;
                watermark = watermark.min(*wm);
            }
            TraceKind::EpTransferFault { dev, boundary, .. }
            | TraceKind::EpTransferRejected { dev, boundary }
            | TraceKind::EpTransferTimeout { dev, boundary } => {
                let ep = eps.entry(*dev).or_default();
                if !ep.sends.iter().any(|(_, b, _)| b == boundary) {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!(
                            "ep{dev} transfer fault reported for boundary {boundary} but no \
                             enqueued transfer of that endpoint carried it"
                        ),
                    ));
                }
            }
            TraceKind::NonOwnerLost { dev } => {
                let ep = eps.entry(*dev).or_default();
                if ep.lost {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!("ep{dev} was declared lost twice"),
                    ));
                }
                ep.lost = true;
                lost_devs.push(*dev);
            }
            TraceKind::OwnerPromoted { dev, epoch } => {
                if promotions >= gpu_losses {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!("ep{dev} promoted although the acting owner was not lost"),
                    ));
                }
                if *epoch as usize != promotions + 1 {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!(
                            "ep{dev} promoted to epoch {epoch}, expected epoch {} (epochs are \
                             strictly sequential)",
                            promotions + 1
                        ),
                    ));
                }
                if lost_devs.contains(dev) || promoted_devs.contains(dev) {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!("ep{dev} promoted although it is lost or already the owner"),
                    ));
                }
                promotions += 1;
                promoted_devs.push(*dev);
                // The new owner resumes the wave walk from work-group 0.
                expected_next = 0;
                // Promotion un-credits the promoted endpoint's delivered
                // ranges (they leave coverage and return to the frontier
                // for the survivors), so the engine's watermark may legally
                // rise here: rebuild it as the covered suffix of the other
                // endpoints' still-credited deliveries.
                applied_by_dev.remove(dev);
                let mut rebuilt = crate::frontier::Coverage::new(total);
                for ranges in applied_by_dev.values() {
                    for &(f, t) in ranges {
                        rebuilt.add(f, t);
                    }
                }
                watermark = rebuilt.suffix_start();
                coverage = rebuilt;
            }
            TraceKind::EpochRejected { dev, boundary } => {
                if promotions == 0 {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!(
                            "ep{dev} status (boundary {boundary}) rejected as stale although \
                             no promotion occurred"
                        ),
                    ));
                }
                let ep = eps.entry(*dev).or_default();
                if !ep.sends.iter().any(|(_, b, _)| b == boundary) {
                    out.push(LintDiagnostic::error(
                        "recovery",
                        format!(
                            "ep{dev} stale-epoch rejection for boundary {boundary} but no \
                             enqueued transfer of that endpoint carried it"
                        ),
                    ));
                }
            }
            TraceKind::DeviceLost { device } => match device {
                DeviceKind::Gpu => {
                    // A second owner loss is legal only when a promotion
                    // installed a new owner in between (cascading failover).
                    if gpu_losses > promotions {
                        out.push(LintDiagnostic::error(
                            "recovery",
                            "device Gpu was declared lost twice",
                        ));
                    }
                    gpu_losses += 1;
                    // The acting owner died mid-walk: its running wave is
                    // abandoned, never completed.
                    open_wave = None;
                }
                DeviceKind::Cpu => out.push(LintDiagnostic::error(
                    "trace-shape",
                    "legacy cpu-loss record inside a multi-device trace (expected ep0 loss)",
                )),
            },
            TraceKind::KernelComplete { finisher } => {
                completes.push((e.at, *finisher));
            }
            other => {
                out.push(LintDiagnostic::error(
                    "trace-shape",
                    format!("legacy two-device event `{other}` inside a multi-device trace"),
                ));
            }
        }
    }

    if launches == 0 && total > 0 {
        out.push(LintDiagnostic::error(
            "trace-shape",
            "gpu was never launched",
        ));
    }
    for (dev, ep) in &eps {
        if let Some((sf, st)) = ep.open_sub {
            // A lost endpoint legally leaves exactly its killed subkernel
            // open, and so does a promoted one (its in-flight subkernel is
            // abandoned when it takes the owner role); any other dangling
            // subkernel is an engine defect.
            if !ep.lost && !promoted_devs.contains(dev) {
                out.push(LintDiagnostic::error(
                    "ep-pairing",
                    format!("ep{dev} subkernel {sf}..{st} never completed"),
                ));
            }
        }
    }
    let all_done: Vec<(SimTime, u64, u64)> = eps
        .values()
        .flat_map(|ep| ep.done.iter().copied())
        .collect();
    // The gpu-lost endgame applies only when the *final* acting owner is
    // dead — a promotion that installed a healthy new owner means the
    // kernel still exits, merges and completes through the owner role.
    let acting_owner_lost = gpu_losses > promotions;
    if acting_owner_lost {
        // A lost owner never exits and never merges; the non-owners finish
        // the whole NDRange among themselves and the host assembles.
        if exit_at.is_some() {
            out.push(LintDiagnostic::error(
                "recovery",
                "gpu exited although it was declared lost",
            ));
        }
        if merge_at.is_some() {
            out.push(LintDiagnostic::error(
                "recovery",
                "diff-merge completed although the gpu was lost",
            ));
        }
        match completes.as_slice() {
            [(at, Finisher::Cpu)] => {
                if !all_done.iter().any(|(t, _, _)| t == at) {
                    out.push(LintDiagnostic::error(
                        "completion",
                        "cpu finisher without any subkernel completing at that time",
                    ));
                }
            }
            [(_, Finisher::Gpu)] => out.push(LintDiagnostic::error(
                "completion",
                "a kernel whose gpu was lost cannot be finished by the gpu",
            )),
            [] => out.push(LintDiagnostic::error(
                "completion",
                "kernel never completed",
            )),
            _ => out.push(LintDiagnostic::error(
                "completion",
                "kernel completed more than once",
            )),
        }
        let mut covered: Vec<(u64, u64)> = all_done.iter().map(|(_, f, t)| (*f, *t)).collect();
        covered.sort_unstable();
        let mut reach = 0u64;
        for (from, to) in covered {
            if from > reach {
                out.push(LintDiagnostic::error(
                    "coverage",
                    format!("work-groups {reach}..{from} were never executed by any survivor"),
                ));
            }
            reach = reach.max(to);
        }
        if reach < total {
            out.push(LintDiagnostic::error(
                "coverage",
                format!("work-groups {reach}..{total} were never executed by any survivor"),
            ));
        }
        return out;
    }
    if let Some((wf, wt)) = open_wave {
        if exit_at.is_none() {
            out.push(LintDiagnostic::error(
                "gpu-exit",
                format!("wave {wf}..{wt} never completed and the gpu never exited"),
            ));
        }
    }
    let Some(exit) = exit_at else {
        out.push(LintDiagnostic::error("gpu-exit", "gpu never exited"));
        return out;
    };
    let Some(merge) = merge_at else {
        out.push(LintDiagnostic::error("merge", "diff-merge never completed"));
        return out;
    };
    if merge < exit {
        out.push(LintDiagnostic::error(
            "merge",
            "diff-merge completed before the gpu exit",
        ));
    }
    // With several endpoints the final data only ever exists assembled on
    // the owner, so the kernel always completes through the merge.
    match completes.as_slice() {
        [(at, Finisher::Gpu)] => {
            if *at != merge {
                out.push(LintDiagnostic::error(
                    "completion",
                    "gpu-finished kernel must complete exactly at merge time",
                ));
            }
        }
        [(_, Finisher::Cpu)] => out.push(LintDiagnostic::error(
            "completion",
            "a multi-device kernel with a healthy owner must be finished by the gpu",
        )),
        [] => out.push(LintDiagnostic::error(
            "completion",
            "kernel never completed",
        )),
        _ => out.push(LintDiagnostic::error(
            "completion",
            "kernel completed more than once",
        )),
    }

    // Coverage: the owner's executed ranges plus the delivered suffix
    // [watermark, total) must cover every work-group (delivered islands
    // below the watermark are re-executed by the owner — duplicated, never
    // lost).
    let mut covered = exec_ranges;
    if watermark < total {
        covered.push((watermark, total));
    }
    covered.sort_unstable();
    let mut reach = 0u64;
    for (from, to) in covered {
        if from > reach {
            out.push(LintDiagnostic::error(
                "coverage",
                format!("work-groups {reach}..{from} were never executed by any device"),
            ));
        }
        reach = reach.max(to);
    }
    if reach < total {
        out.push(LintDiagnostic::error(
            "coverage",
            format!("work-groups {reach}..{total} were never executed by any device"),
        ));
    }
    out
}

/// Lints the trace of a degraded single-device run: after a permanent
/// device loss, the runtime executes the whole NDRange on the survivor and
/// records `[Enqueued, DegradedRun, KernelComplete]` — no co-execution
/// machinery (waves, subkernels, transfers) may appear.
fn lint_degraded(
    events: &[TraceEvent],
    total: u64,
    mut out: Vec<LintDiagnostic>,
) -> Vec<LintDiagnostic> {
    let mut prev_at = events[0].at;
    let mut spans: Vec<(u64, u64)> = Vec::new();
    let mut completes = 0usize;
    for e in &events[1..] {
        if e.at < prev_at {
            out.push(LintDiagnostic::error(
                "chronology",
                format!("event `{}` is timestamped before its predecessor", e.kind),
            ));
        }
        prev_at = e.at;
        match &e.kind {
            TraceKind::DegradedRun { from, to, .. } | TraceKind::EpDegradedRun { from, to, .. } => {
                if from >= to {
                    out.push(LintDiagnostic::error(
                        "degraded-shape",
                        format!("degraded span {from}..{to} is empty or reversed"),
                    ));
                }
                spans.push((*from, *to));
            }
            TraceKind::KernelComplete { .. } => completes += 1,
            TraceKind::DeviceLost { .. } => {}
            other => out.push(LintDiagnostic::error(
                "degraded-shape",
                format!("event `{other}` has no place in a degraded single-device trace"),
            )),
        }
    }
    if completes != 1 {
        out.push(LintDiagnostic::error(
            "completion",
            format!("degraded run completed {completes} times, expected exactly once"),
        ));
    }
    spans.sort_unstable();
    let mut reach = 0u64;
    for (from, to) in spans {
        if from > reach {
            out.push(LintDiagnostic::error(
                "coverage",
                format!("work-groups {reach}..{from} were never executed by the survivor"),
            ));
        }
        reach = reach.max(to);
    }
    if reach < total {
        out.push(LintDiagnostic::error(
            "coverage",
            format!("work-groups {reach}..{total} were never executed by the survivor"),
        ));
    }
    out
}

/// Lints the trace of a graph-scheduled node that ran alone on one
/// endpoint while its siblings used the other devices
/// (`with_graph_scheduling`): the runtime records
/// `[Enqueued, GraphRun, KernelComplete]` — no co-execution machinery
/// (waves, subkernels, transfers) may appear, the runs must cover
/// `[0, total)`, and they must all name the same endpoint (one node never
/// migrates mid-flush).
fn lint_graph(
    events: &[TraceEvent],
    total: u64,
    mut out: Vec<LintDiagnostic>,
) -> Vec<LintDiagnostic> {
    let mut prev_at = events[0].at;
    let mut spans: Vec<(u64, u64)> = Vec::new();
    let mut devs: Vec<u32> = Vec::new();
    let mut completes = 0usize;
    for e in &events[1..] {
        if e.at < prev_at {
            out.push(LintDiagnostic::error(
                "chronology",
                format!("event `{}` is timestamped before its predecessor", e.kind),
            ));
        }
        prev_at = e.at;
        match &e.kind {
            TraceKind::GraphRun { dev, from, to, .. } => {
                if from >= to {
                    out.push(LintDiagnostic::error(
                        "graph-shape",
                        format!("graph-run span {from}..{to} is empty or reversed"),
                    ));
                }
                spans.push((*from, *to));
                devs.push(*dev);
            }
            TraceKind::KernelComplete { .. } => completes += 1,
            other => out.push(LintDiagnostic::error(
                "graph-shape",
                format!("event `{other}` has no place in a graph-run trace"),
            )),
        }
    }
    if completes != 1 {
        out.push(LintDiagnostic::error(
            "completion",
            format!("graph node completed {completes} times, expected exactly once"),
        ));
    }
    devs.dedup();
    if devs.len() > 1 {
        out.push(LintDiagnostic::error(
            "graph-shape",
            "one graph node ran on more than one endpoint",
        ));
    }
    spans.sort_unstable();
    let mut reach = 0u64;
    for (from, to) in spans {
        if from > reach {
            out.push(LintDiagnostic::error(
                "coverage",
                format!("work-groups {reach}..{from} were never executed by the node's endpoint"),
            ));
        }
        reach = reach.max(to);
    }
    if reach < total {
        out.push(LintDiagnostic::error(
            "coverage",
            format!("work-groups {reach}..{total} were never executed by the node's endpoint"),
        ));
    }
    out
}

/// Lints a kernel report: runs [`lint_trace`] on its trace and cross-checks
/// the report counters against what the trace records.
pub fn lint_report(report: &KernelReport) -> Vec<LintDiagnostic> {
    let mut out = lint_trace(&report.trace);
    let mut gpu_executed = 0u64;
    let mut cpu_executed = 0u64;
    let mut subkernel_starts = 0u64;
    let mut trace_hd_bytes = 0u64;
    let mut final_watermark = report.total_wgs;
    let mut complete: Option<(SimTime, Finisher)> = None;
    let mut trace_total: Option<u64> = None;
    let mut device_lost = false;
    let mut multi = false;
    let mut peer_executed = 0u64;
    for e in &report.trace {
        match &e.kind {
            TraceKind::Enqueued { total_wgs, .. } => {
                trace_total.get_or_insert(*total_wgs);
                if e.at != report.enqueued_at {
                    out.push(LintDiagnostic::error(
                        "report-consistency",
                        "trace enqueue time differs from the report",
                    ));
                }
            }
            TraceKind::GpuWaveDone {
                from, executed_to, ..
            } => gpu_executed += executed_to.saturating_sub(*from),
            TraceKind::CpuSubkernelStart { .. } => subkernel_starts += 1,
            TraceKind::CpuSubkernelDone { from, to } => cpu_executed += to - from,
            TraceKind::HdEnqueued { bytes, .. } | TraceKind::CoalescedSend { bytes, .. } => {
                trace_hd_bytes += bytes
            }
            TraceKind::StatusArrived { boundary } => {
                final_watermark = final_watermark.min(*boundary);
            }
            TraceKind::KernelComplete { finisher } => complete = Some((e.at, *finisher)),
            TraceKind::DegradedRun { device, from, to } => match device {
                DeviceKind::Cpu => cpu_executed += to - from,
                DeviceKind::Gpu => gpu_executed += to - from,
            },
            TraceKind::DeviceLost { .. } => device_lost = true,
            TraceKind::EpSubkernelStart { .. } => {
                multi = true;
                subkernel_starts += 1;
            }
            TraceKind::EpSubkernelDone { dev, from, to } => {
                multi = true;
                if *dev == 0 {
                    cpu_executed += to - from;
                } else {
                    peer_executed += to - from;
                }
            }
            TraceKind::EpSend { bytes, .. } => {
                multi = true;
                trace_hd_bytes += bytes;
            }
            TraceKind::EpStatus { watermark, .. } => {
                multi = true;
                final_watermark = final_watermark.min(*watermark);
            }
            TraceKind::NonOwnerLost { .. } => {
                multi = true;
                device_lost = true;
            }
            TraceKind::OwnerPromoted { .. } | TraceKind::EpochRejected { .. } => {
                multi = true;
            }
            TraceKind::EpDegradedRun { from, to, .. } => {
                multi = true;
                peer_executed += to - from;
            }
            TraceKind::GraphRun { from, to, .. } => {
                multi = true;
                peer_executed += to - from;
            }
            _ => {}
        }
    }
    let mut mismatch = |what: &str, trace_v: u64, report_v: u64| {
        if trace_v != report_v {
            out.push(LintDiagnostic::error(
                "report-consistency",
                format!("trace shows {trace_v} {what}, report claims {report_v}"),
            ));
        }
    };
    mismatch(
        "total work-groups",
        trace_total.unwrap_or(report.total_wgs),
        report.total_wgs,
    );
    mismatch(
        "gpu-executed work-groups",
        gpu_executed,
        report.gpu_executed_wgs,
    );
    mismatch(
        "cpu-executed work-groups",
        cpu_executed,
        report.cpu_executed_wgs,
    );
    // After a device loss the merged region is decoupled from the
    // watermark (a lost GPU merges nothing at all), so the watermark
    // cross-check only holds for fault-free and transfer-fault runs. In a
    // multi-device trace delivered islands below the final watermark also
    // merge, so the watermark gives a lower bound instead of an equality.
    if !device_lost && !multi {
        mismatch(
            "cpu-merged work-groups",
            report.total_wgs - final_watermark,
            report.cpu_merged_wgs,
        );
    }
    if multi {
        mismatch(
            "peer-executed work-groups",
            peer_executed,
            report.peer_executed_wgs.iter().sum(),
        );
    }
    mismatch("subkernels", subkernel_starts, report.subkernels);
    mismatch("hd bytes", trace_hd_bytes, report.hd_bytes);
    // In a multi-device trace delivered islands below the final watermark
    // also merge, so the watermark bounds the merged count from below and
    // the endpoints' executed total bounds it from above.
    if multi && !device_lost {
        if report.cpu_merged_wgs < report.total_wgs - final_watermark {
            out.push(LintDiagnostic::error(
                "report-consistency",
                format!(
                    "report merges {} work-groups but the delivered suffix alone covers {}",
                    report.cpu_merged_wgs,
                    report.total_wgs - final_watermark
                ),
            ));
        }
        if report.cpu_merged_wgs > cpu_executed + peer_executed {
            out.push(LintDiagnostic::error(
                "report-consistency",
                format!(
                    "report merges {} work-groups but the endpoints only executed {}",
                    report.cpu_merged_wgs,
                    cpu_executed + peer_executed
                ),
            ));
        }
    }
    if let Some((at, finisher)) = complete {
        if at != report.complete_at || finisher != report.finished_by {
            out.push(LintDiagnostic::error(
                "report-consistency",
                "trace completion event disagrees with the report",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_des::SimTime;

    fn ev(ns: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ns),
            kind,
        }
    }

    /// A legal co-execution over 4 work-groups: the CPU takes the top two
    /// one at a time, the first status arrives in time, the second never
    /// does (its transfer is in flight when the GPU exits).
    fn legal_trace() -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                TraceKind::Enqueued {
                    total_wgs: 4,
                    pipeline_depth: 1,
                },
            ),
            ev(
                5,
                TraceKind::CpuSubkernelStart {
                    from: 3,
                    to: 4,
                    version: 0,
                },
            ),
            ev(10, TraceKind::GpuLaunch),
            ev(10, TraceKind::GpuWaveStart { from: 0, to: 2 }),
            ev(20, TraceKind::CpuSubkernelDone { from: 3, to: 4 }),
            ev(
                25,
                TraceKind::HdEnqueued {
                    boundary: 3,
                    bytes: 64,
                    dirty_bytes: None,
                },
            ),
            ev(
                25,
                TraceKind::CpuSubkernelStart {
                    from: 2,
                    to: 3,
                    version: 0,
                },
            ),
            ev(
                30,
                TraceKind::GpuWaveDone {
                    from: 0,
                    to: 2,
                    executed_to: 2,
                },
            ),
            ev(30, TraceKind::GpuWaveStart { from: 2, to: 4 }),
            ev(35, TraceKind::StatusArrived { boundary: 3 }),
            ev(38, TraceKind::CpuSubkernelDone { from: 2, to: 3 }),
            ev(
                39,
                TraceKind::HdEnqueued {
                    boundary: 2,
                    bytes: 64,
                    dirty_bytes: None,
                },
            ),
            ev(
                40,
                TraceKind::GpuWaveDone {
                    from: 2,
                    to: 4,
                    executed_to: 3,
                },
            ),
            ev(40, TraceKind::GpuExit),
            ev(45, TraceKind::MergeDone),
            ev(
                45,
                TraceKind::KernelComplete {
                    finisher: Finisher::Gpu,
                },
            ),
        ]
    }

    #[test]
    fn legal_trace_is_clean() {
        assert_eq!(lint_trace(&legal_trace()), vec![]);
    }

    #[test]
    fn empty_trace_is_flagged() {
        assert!(lint_trace(&[]).iter().any(|d| d.rule == "trace-shape"));
    }

    #[test]
    fn missing_enqueue_record_is_flagged() {
        let t = &legal_trace()[1..];
        assert!(lint_trace(t).iter().any(|d| d.rule == "trace-shape"));
    }

    #[test]
    fn rising_watermark_is_flagged() {
        let mut t = legal_trace();
        // The status claims a boundary above the current watermark (4).
        for e in &mut t {
            if let TraceKind::StatusArrived { boundary } = &mut e.kind {
                *boundary = 5;
            }
        }
        let diags = lint_trace(&t);
        assert!(
            diags.iter().any(|d| d.rule == "watermark-monotone"),
            "{diags:?}"
        );
    }

    #[test]
    fn status_without_transfer_is_flagged() {
        let mut t = legal_trace();
        t.retain(|e| !matches!(e.kind, TraceKind::HdEnqueued { .. }));
        let diags = lint_trace(&t);
        assert!(
            diags.iter().any(|d| d.rule == "data-before-status"),
            "{diags:?}"
        );
    }

    #[test]
    fn status_faster_than_its_data_is_flagged() {
        let mut t = legal_trace();
        for e in &mut t {
            if matches!(e.kind, TraceKind::StatusArrived { .. }) {
                e.at = SimTime::from_nanos(24); // before the 25ns send
            }
        }
        t.sort_by_key(|e| e.at);
        let diags = lint_trace(&t);
        assert!(
            diags.iter().any(|d| d.rule == "data-before-status"),
            "{diags:?}"
        );
    }

    #[test]
    fn wave_past_watermark_is_flagged() {
        let mut t = legal_trace();
        // Deliver the status before the second wave starts: the 2..4 wave
        // then runs past the watermark 3 known at its start.
        for e in &mut t {
            if matches!(e.kind, TraceKind::StatusArrived { .. }) {
                e.at = SimTime::from_nanos(28);
            }
        }
        t.sort_by_key(|e| e.at);
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "wave-bounds"), "{diags:?}");
    }

    #[test]
    fn missing_wave_leaves_a_coverage_gap() {
        let mut t = legal_trace();
        t.retain(|e| {
            !matches!(
                e.kind,
                TraceKind::GpuWaveStart { from: 0, .. } | TraceKind::GpuWaveDone { from: 0, .. }
            )
        });
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "coverage"), "{diags:?}");
        assert!(
            diags.iter().any(|d| d.rule == "wave-contiguity"),
            "{diags:?}"
        );
    }

    #[test]
    fn merge_before_exit_is_flagged() {
        let mut t = legal_trace();
        for e in &mut t {
            if matches!(e.kind, TraceKind::MergeDone) {
                e.at = SimTime::from_nanos(39);
            }
        }
        t.sort_by_key(|e| e.at);
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "merge"), "{diags:?}");
    }

    #[test]
    fn missing_merge_is_flagged() {
        let mut t = legal_trace();
        t.retain(|e| !matches!(e.kind, TraceKind::MergeDone));
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "merge"), "{diags:?}");
    }

    #[test]
    fn non_contiguous_subkernels_are_flagged() {
        let mut t = legal_trace();
        for e in &mut t {
            if let TraceKind::CpuSubkernelStart { from, to, .. } = &mut e.kind {
                if *to == 3 {
                    // Second subkernel skips a work-group: 1..2 instead of 2..3.
                    *from = 1;
                    *to = 2;
                }
            }
        }
        let diags = lint_trace(&t);
        assert!(
            diags.iter().any(|d| d.rule == "cpu-contiguity"),
            "{diags:?}"
        );
    }

    #[test]
    fn double_completion_is_flagged() {
        let mut t = legal_trace();
        t.push(ev(
            50,
            TraceKind::KernelComplete {
                finisher: Finisher::Gpu,
            },
        ));
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "completion"), "{diags:?}");
    }

    #[test]
    fn unsorted_trace_is_flagged() {
        let mut t = legal_trace();
        t.swap(3, 12);
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "chronology"), "{diags:?}");
    }

    #[test]
    fn cpu_finisher_requires_reaching_zero() {
        let mut t = legal_trace();
        for e in &mut t {
            if let TraceKind::KernelComplete { finisher } = &mut e.kind {
                *finisher = Finisher::Cpu;
            }
        }
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "completion"), "{diags:?}");
    }

    #[test]
    fn consistent_dirty_byte_accounting_is_clean() {
        let mut t = legal_trace();
        for e in &mut t {
            if let TraceKind::HdEnqueued {
                bytes, dirty_bytes, ..
            } = &mut e.kind
            {
                *dirty_bytes = Some(48);
                *bytes = 48 + STATUS_MSG_BYTES;
            }
        }
        assert_eq!(lint_trace(&t), vec![]);
    }

    #[test]
    fn over_shipped_transfer_is_flagged() {
        let mut t = legal_trace();
        for e in &mut t {
            if let TraceKind::HdEnqueued {
                bytes, dirty_bytes, ..
            } = &mut e.kind
            {
                // Claims 32 dirty bytes but ships a 64 B payload.
                *dirty_bytes = Some(32);
                *bytes = 64 + STATUS_MSG_BYTES;
            }
        }
        let diags = lint_trace(&t);
        assert!(
            diags.iter().any(|d| d.rule == "transfer-bytes"),
            "{diags:?}"
        );
    }

    /// A legal GPU-loss recovery over 4 work-groups: the first wave is
    /// killed (never completes), the CPU keeps descending to work-group 0
    /// and finishes the kernel alone — no exit, no merge.
    fn gpu_loss_trace() -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                TraceKind::Enqueued {
                    total_wgs: 4,
                    pipeline_depth: 1,
                },
            ),
            ev(
                5,
                TraceKind::CpuSubkernelStart {
                    from: 3,
                    to: 4,
                    version: 0,
                },
            ),
            ev(10, TraceKind::GpuLaunch),
            ev(10, TraceKind::GpuWaveStart { from: 0, to: 2 }),
            ev(20, TraceKind::CpuSubkernelDone { from: 3, to: 4 }),
            ev(
                25,
                TraceKind::HdEnqueued {
                    boundary: 3,
                    bytes: 64,
                    dirty_bytes: None,
                },
            ),
            ev(
                25,
                TraceKind::CpuSubkernelStart {
                    from: 2,
                    to: 3,
                    version: 0,
                },
            ),
            ev(35, TraceKind::StatusArrived { boundary: 3 }),
            ev(38, TraceKind::CpuSubkernelDone { from: 2, to: 3 }),
            ev(
                39,
                TraceKind::HdEnqueued {
                    boundary: 2,
                    bytes: 64,
                    dirty_bytes: None,
                },
            ),
            ev(
                39,
                TraceKind::CpuSubkernelStart {
                    from: 1,
                    to: 2,
                    version: 0,
                },
            ),
            ev(45, TraceKind::CpuSubkernelDone { from: 1, to: 2 }),
            ev(
                46,
                TraceKind::CpuSubkernelStart {
                    from: 0,
                    to: 1,
                    version: 0,
                },
            ),
            ev(
                50,
                TraceKind::DeviceLost {
                    device: DeviceKind::Gpu,
                },
            ),
            ev(52, TraceKind::CpuSubkernelDone { from: 0, to: 1 }),
            ev(
                52,
                TraceKind::KernelComplete {
                    finisher: Finisher::Cpu,
                },
            ),
        ]
    }

    #[test]
    fn gpu_loss_recovery_trace_is_legal() {
        assert_eq!(lint_trace(&gpu_loss_trace()), vec![]);
    }

    #[test]
    fn gpu_finisher_after_gpu_loss_is_flagged() {
        let mut t = gpu_loss_trace();
        for e in &mut t {
            if let TraceKind::KernelComplete { finisher } = &mut e.kind {
                *finisher = Finisher::Gpu;
            }
        }
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "completion"), "{diags:?}");
    }

    #[test]
    fn gpu_loss_with_incomplete_cpu_descent_is_flagged() {
        let mut t = gpu_loss_trace();
        // Drop the final 0..1 subkernel: nobody executed work-group 0.
        t.retain(|e| {
            !matches!(
                e.kind,
                TraceKind::CpuSubkernelStart { from: 0, .. }
                    | TraceKind::CpuSubkernelDone { from: 0, .. }
            )
        });
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "coverage"), "{diags:?}");
    }

    #[test]
    fn cpu_loss_open_subkernel_is_legal() {
        // The kernel completes normally on the GPU while the killed CPU
        // subkernel stays open; the loss is detected (and recorded) only
        // when the watchdog drains after completion.
        let mut t = legal_trace();
        t.insert(
            12,
            ev(
                39,
                TraceKind::CpuSubkernelStart {
                    from: 1,
                    to: 2,
                    version: 0,
                },
            ),
        );
        t.push(ev(
            60,
            TraceKind::DeviceLost {
                device: DeviceKind::Cpu,
            },
        ));
        t.sort_by_key(|e| e.at);
        assert_eq!(lint_trace(&t), vec![]);
    }

    #[test]
    fn open_subkernel_without_recorded_loss_is_still_flagged() {
        let mut t = legal_trace();
        t.insert(
            12,
            ev(
                39,
                TraceKind::CpuSubkernelStart {
                    from: 1,
                    to: 2,
                    version: 0,
                },
            ),
        );
        t.sort_by_key(|e| e.at);
        let diags = lint_trace(&t);
        assert!(
            diags.iter().any(|d| d.rule == "cpu-contiguity"),
            "{diags:?}"
        );
    }

    #[test]
    fn transient_retry_resend_is_legal() {
        // The first transfer (boundary 3) fails transiently and is resent;
        // its status arrives late, interleaved with the boundary-2 send.
        let t = vec![
            ev(
                0,
                TraceKind::Enqueued {
                    total_wgs: 4,
                    pipeline_depth: 1,
                },
            ),
            ev(
                5,
                TraceKind::CpuSubkernelStart {
                    from: 3,
                    to: 4,
                    version: 0,
                },
            ),
            ev(10, TraceKind::GpuLaunch),
            ev(10, TraceKind::GpuWaveStart { from: 0, to: 2 }),
            ev(20, TraceKind::CpuSubkernelDone { from: 3, to: 4 }),
            ev(
                25,
                TraceKind::HdEnqueued {
                    boundary: 3,
                    bytes: 64,
                    dirty_bytes: None,
                },
            ),
            ev(
                25,
                TraceKind::CpuSubkernelStart {
                    from: 2,
                    to: 3,
                    version: 0,
                },
            ),
            ev(
                30,
                TraceKind::GpuWaveDone {
                    from: 0,
                    to: 2,
                    executed_to: 2,
                },
            ),
            ev(30, TraceKind::GpuWaveStart { from: 2, to: 4 }),
            ev(
                35,
                TraceKind::TransferFault {
                    boundary: 3,
                    attempt: 1,
                },
            ),
            ev(
                36,
                TraceKind::HdEnqueued {
                    boundary: 3,
                    bytes: 64,
                    dirty_bytes: None,
                },
            ),
            ev(38, TraceKind::CpuSubkernelDone { from: 2, to: 3 }),
            ev(
                39,
                TraceKind::HdEnqueued {
                    boundary: 2,
                    bytes: 64,
                    dirty_bytes: None,
                },
            ),
            ev(39, TraceKind::StatusArrived { boundary: 3 }),
            ev(
                40,
                TraceKind::GpuWaveDone {
                    from: 2,
                    to: 4,
                    executed_to: 3,
                },
            ),
            ev(40, TraceKind::GpuExit),
            ev(45, TraceKind::MergeDone),
            ev(
                45,
                TraceKind::KernelComplete {
                    finisher: Finisher::Gpu,
                },
            ),
        ];
        assert_eq!(lint_trace(&t), vec![]);
    }

    #[test]
    fn fault_event_for_unsent_boundary_is_flagged() {
        let mut t = legal_trace();
        t.insert(
            10,
            ev(
                36,
                TraceKind::TransferFault {
                    boundary: 1,
                    attempt: 1,
                },
            ),
        );
        t.sort_by_key(|e| e.at);
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "recovery"), "{diags:?}");
    }

    #[test]
    fn degraded_trace_is_legal() {
        let t = vec![
            ev(
                0,
                TraceKind::Enqueued {
                    total_wgs: 8,
                    pipeline_depth: 1,
                },
            ),
            ev(
                3,
                TraceKind::DegradedRun {
                    device: DeviceKind::Cpu,
                    from: 0,
                    to: 8,
                },
            ),
            ev(
                90,
                TraceKind::KernelComplete {
                    finisher: Finisher::Cpu,
                },
            ),
        ];
        assert_eq!(lint_trace(&t), vec![]);
    }

    #[test]
    fn degraded_trace_with_coverage_gap_is_flagged() {
        let t = vec![
            ev(
                0,
                TraceKind::Enqueued {
                    total_wgs: 8,
                    pipeline_depth: 1,
                },
            ),
            ev(
                3,
                TraceKind::DegradedRun {
                    device: DeviceKind::Gpu,
                    from: 0,
                    to: 6,
                },
            ),
            ev(
                90,
                TraceKind::KernelComplete {
                    finisher: Finisher::Gpu,
                },
            ),
        ];
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "coverage"), "{diags:?}");
    }

    #[test]
    fn coexec_machinery_inside_degraded_trace_is_flagged() {
        let t = vec![
            ev(
                0,
                TraceKind::Enqueued {
                    total_wgs: 8,
                    pipeline_depth: 1,
                },
            ),
            ev(2, TraceKind::GpuLaunch),
            ev(
                3,
                TraceKind::DegradedRun {
                    device: DeviceKind::Gpu,
                    from: 0,
                    to: 8,
                },
            ),
            ev(
                90,
                TraceKind::KernelComplete {
                    finisher: Finisher::Gpu,
                },
            ),
        ];
        let diags = lint_trace(&t);
        assert!(
            diags.iter().any(|d| d.rule == "degraded-shape"),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_render_with_rule_and_severity() {
        let d = LintDiagnostic::error("coverage", "gap at 3..5");
        assert_eq!(d.to_string(), "[error] coverage: gap at 3..5");
        let w = LintDiagnostic::warning("unused-input", "arg `x` never read");
        assert!(w.to_string().starts_with("[warning]"));
        assert!(LintSeverity::Warning < LintSeverity::Error);
    }

    fn graph_trace(total: u64) -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                TraceKind::Enqueued {
                    total_wgs: total,
                    pipeline_depth: 1,
                },
            ),
            ev(
                10,
                TraceKind::GraphRun {
                    node: 1,
                    dev: 1,
                    from: 0,
                    to: total,
                },
            ),
            ev(
                90,
                TraceKind::KernelComplete {
                    finisher: Finisher::Gpu,
                },
            ),
        ]
    }

    #[test]
    fn legal_graph_run_trace_is_clean() {
        assert!(lint_trace(&graph_trace(8)).is_empty());
    }

    #[test]
    fn graph_run_coverage_gap_is_flagged() {
        let mut t = graph_trace(8);
        t[1] = ev(
            10,
            TraceKind::GraphRun {
                node: 1,
                dev: 1,
                from: 0,
                to: 6,
            },
        );
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "coverage"), "{diags:?}");
    }

    #[test]
    fn graph_run_rejects_coexec_machinery() {
        let mut t = graph_trace(8);
        t.insert(1, ev(5, TraceKind::GpuLaunch));
        let diags = lint_trace(&t);
        assert!(diags.iter().any(|d| d.rule == "graph-shape"), "{diags:?}");
    }

    #[test]
    fn graph_run_rejects_endpoint_migration() {
        let mut t = graph_trace(8);
        t[1] = ev(
            10,
            TraceKind::GraphRun {
                node: 1,
                dev: 1,
                from: 0,
                to: 4,
            },
        );
        t.insert(
            2,
            ev(
                20,
                TraceKind::GraphRun {
                    node: 1,
                    dev: 2,
                    from: 4,
                    to: 8,
                },
            ),
        );
        let diags = lint_trace(&t);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("more than one endpoint")),
            "{diags:?}"
        );
    }
}
