//! HEFT-style lookahead placement for the kernel graph.
//!
//! Heterogeneous Earliest Finish Time (Topcuoglu et al.) adapted to the
//! FluidiCL device roster: each graph node can run on one of several
//! *lanes* — lane 0 is the owner co-execution path (CPU + owner GPU under
//! the fluidic protocol), lane `p >= 1` is peer GPU `p` executing the node
//! alone. Node weights are per-(kernel, lane) execution-time estimates
//! held in a [`WeightTable`]: seeded from the hetsim device models (the
//! paper's profiling trials) and refined online with an EWMA of observed
//! virtual times. Edge costs are link-bandwidth transfer estimates for the
//! bytes a true dependence moves, charged only when producer and consumer
//! land on different lanes.
//!
//! The planner is pure (no runtime state), so the check crate can replay
//! placements and the mutation tests can probe edge handling directly.

/// One scheduling edge: `from` must finish before `to` starts, and moving
/// the data across lanes costs `cost_ns`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeftEdge {
    /// Producing node index.
    pub from: usize,
    /// Consuming node index (must be greater than `from`).
    pub to: usize,
    /// Transfer estimate in nanoseconds if the two nodes run on
    /// different lanes (zero when co-located).
    pub cost_ns: u64,
}

/// The placement the planner chose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeftPlan {
    /// Node indices in scheduling order (decreasing upward rank — a
    /// topological order of the DAG).
    pub order: Vec<usize>,
    /// Chosen lane per node (indexed by node).
    pub lane: Vec<usize>,
    /// Estimated start per node, ns (indexed by node).
    pub start_ns: Vec<u64>,
    /// Estimated finish per node, ns (indexed by node).
    pub finish_ns: Vec<u64>,
}

impl HeftPlan {
    /// Estimated makespan: the latest node finish (0 for an empty graph).
    pub fn makespan_ns(&self) -> u64 {
        self.finish_ns.iter().copied().max().unwrap_or(0)
    }
}

/// Plans placements for a DAG whose node `i` costs `weights[i][lane]`
/// nanoseconds on each lane. Edges must satisfy `from < to` (the DAG
/// builder emits program-order edges). Weights are clamped to at least
/// 1 ns so decreasing upward rank is a strict topological order.
///
/// # Panics
///
/// Panics if a weight row's lane count differs from the others, or an
/// edge references a missing node or has `from >= to`.
pub fn plan(weights: &[Vec<u64>], edges: &[HeftEdge]) -> HeftPlan {
    let n = weights.len();
    if n == 0 {
        return HeftPlan {
            order: Vec::new(),
            lane: Vec::new(),
            start_ns: Vec::new(),
            finish_ns: Vec::new(),
        };
    }
    let lanes = weights[0].len();
    assert!(lanes > 0, "at least one lane");
    for w in weights {
        assert_eq!(w.len(), lanes, "every node weighs every lane");
    }
    for e in edges {
        assert!(e.from < e.to && e.to < n, "edges follow program order");
    }

    // Upward rank over mean lane weight: rank(i) = w̄(i) + max over
    // successors of (edge cost + rank(succ)). Reverse index order is a
    // reverse topological order because every edge has from < to.
    let mean: Vec<u64> = weights
        .iter()
        .map(|w| (w.iter().map(|&x| x.max(1)).sum::<u64>() / lanes as u64).max(1))
        .collect();
    let mut rank = vec![0u64; n];
    for i in (0..n).rev() {
        let tail = edges
            .iter()
            .filter(|e| e.from == i)
            .map(|e| e.cost_ns + rank[e.to])
            .max()
            .unwrap_or(0);
        rank[i] = mean[i] + tail;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rank[b].cmp(&rank[a]).then(a.cmp(&b)));

    // Earliest-finish-time placement in rank order.
    let mut lane = vec![0usize; n];
    let mut start_ns = vec![0u64; n];
    let mut finish_ns = vec![0u64; n];
    let mut lane_free = vec![0u64; lanes];
    for &node in &order {
        let mut best: Option<(u64, u64, usize)> = None; // (eft, est, lane)
        for l in 0..lanes {
            let ready = edges
                .iter()
                .filter(|e| e.to == node)
                .map(|e| finish_ns[e.from] + if lane[e.from] == l { 0 } else { e.cost_ns })
                .max()
                .unwrap_or(0);
            let est = lane_free[l].max(ready);
            let eft = est + weights[node][l].max(1);
            if best.is_none_or(|(b, _, _)| eft < b) {
                best = Some((eft, est, l));
            }
        }
        let (eft, est, l) = best.expect("at least one lane");
        lane[node] = l;
        start_ns[node] = est;
        finish_ns[node] = eft;
        lane_free[l] = eft;
    }
    HeftPlan {
        order,
        lane,
        start_ns,
        finish_ns,
    }
}

/// EWMA smoothing factor for online weight refinement: observation and
/// history weigh equally, so estimates converge in a few launches without
/// thrashing on one outlier (paper §6.6 keeps its profiling trials
/// similarly short).
const EWMA_ALPHA: f64 = 0.5;

/// Per-(kernel, lane) execution-time estimates: seeded from the device
/// models on first sight, refined by EWMA as flushed graphs report their
/// observed virtual times. Lives on the runtime, so estimates carry
/// across flushes — the "online-profiled node weights" of ISSUE 10.
#[derive(Clone, Debug, Default)]
pub struct WeightTable {
    entries: Vec<(String, usize, u64)>,
}

impl WeightTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current estimate for `kernel` on `lane`, or `seed_ns` (the
    /// model-derived profiling estimate) if the pair was never observed.
    pub fn estimate_ns(&self, kernel: &str, lane: usize, seed_ns: u64) -> u64 {
        self.entries
            .iter()
            .find(|(k, l, _)| k == kernel && *l == lane)
            .map_or(seed_ns, |&(_, _, v)| v)
    }

    /// Folds one observed execution time into the estimate for
    /// `kernel` on `lane`.
    pub fn observe_ns(&mut self, kernel: &str, lane: usize, observed_ns: u64) {
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|(k, l, _)| k == kernel && *l == lane)
        {
            let blended = entry.2 as f64 * (1.0 - EWMA_ALPHA) + observed_ns as f64 * EWMA_ALPHA;
            entry.2 = blended.round() as u64;
        } else {
            self.entries.push((kernel.to_string(), lane, observed_ns));
        }
    }

    /// Number of (kernel, lane) pairs observed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_plans_empty() {
        let p = plan(&[], &[]);
        assert!(p.order.is_empty());
        assert_eq!(p.makespan_ns(), 0);
    }

    #[test]
    fn independent_nodes_spread_across_lanes() {
        // Two equal nodes, two lanes: HEFT should overlap them.
        let w = vec![vec![100, 100], vec![100, 100]];
        let p = plan(&w, &[]);
        assert_ne!(p.lane[0], p.lane[1], "independent nodes take both lanes");
        assert_eq!(p.makespan_ns(), 100, "overlapped, not serialized");
    }

    #[test]
    fn chain_serializes_and_charges_cross_lane_cost_only() {
        // a -> b with a 50 ns edge. Lane 0 is fast for both, so both land
        // there and the edge cost is never charged.
        let w = vec![vec![100, 400], vec![100, 400]];
        let edges = [HeftEdge {
            from: 0,
            to: 1,
            cost_ns: 50,
        }];
        let p = plan(&w, &edges);
        assert_eq!(p.lane, vec![0, 0]);
        assert_eq!(p.start_ns[1], 100, "co-located: no transfer charged");
        // Make lane 0 busy for b only: b moves to lane 1 and pays the edge.
        let w = vec![vec![100, 400], vec![4000, 200]];
        let p = plan(&w, &edges);
        assert_eq!(p.lane, vec![0, 1]);
        assert_eq!(p.start_ns[1], 150, "cross-lane: finish(a) + 50");
        assert_eq!(p.makespan_ns(), 350);
    }

    #[test]
    fn order_is_topological() {
        // Diamond: 0 -> {1, 2} -> 3.
        let w = vec![vec![10, 10]; 4];
        let edges = [
            HeftEdge {
                from: 0,
                to: 1,
                cost_ns: 0,
            },
            HeftEdge {
                from: 0,
                to: 2,
                cost_ns: 0,
            },
            HeftEdge {
                from: 1,
                to: 3,
                cost_ns: 0,
            },
            HeftEdge {
                from: 2,
                to: 3,
                cost_ns: 0,
            },
        ];
        let p = plan(&w, &edges);
        let pos = |i: usize| p.order.iter().position(|&x| x == i).expect("scheduled");
        for e in &edges {
            assert!(pos(e.from) < pos(e.to), "rank order respects {e:?}");
        }
        // The two middle nodes overlap on distinct lanes.
        assert_ne!(p.lane[1], p.lane[2]);
        assert_eq!(p.makespan_ns(), 30);
    }

    #[test]
    fn zero_weights_are_clamped() {
        let p = plan(&vec![vec![0, 0]; 3], &[]);
        assert!(p.makespan_ns() >= 1, "clamp keeps ranks strictly ordered");
    }

    #[test]
    fn weight_table_seeds_then_converges() {
        let mut t = WeightTable::new();
        assert!(t.is_empty());
        assert_eq!(t.estimate_ns("syrk", 0, 777), 777, "unseen: model seed");
        t.observe_ns("syrk", 0, 1000);
        assert_eq!(t.estimate_ns("syrk", 0, 777), 1000, "first sight adopts");
        t.observe_ns("syrk", 0, 2000);
        assert_eq!(t.estimate_ns("syrk", 0, 777), 1500, "EWMA alpha 0.5");
        assert_eq!(t.estimate_ns("syrk", 1, 5), 5, "lanes are independent");
        t.observe_ns("syrk", 1, 9);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn rejects_backward_edges() {
        let _ = plan(
            &[vec![1], vec![1]],
            &[HeftEdge {
                from: 1,
                to: 0,
                cost_ns: 0,
            }],
        );
    }
}
