//! Execution traces: a per-kernel timeline of every protocol event.
//!
//! FluidiCL's behaviour — waves, subkernels, transfers, aborts, the merge —
//! is an interleaving in time. The co-execution engine records each event
//! with its virtual timestamp, and [`render_timeline`] prints the protocol
//! as it played out, which is how most scheduling questions ("why did the
//! GPU duplicate that range?") get answered.

use std::fmt;

use fluidicl_des::SimTime;
use fluidicl_vcl::DeviceKind;

use crate::stats::Finisher;

/// Size of the completion-status message sent after each subkernel's data
/// (paper §4.2: subkernel number + boundary). Shared by the coexec engine
/// (which charges it per H2D send) and the protocol linter (which checks
/// transferred bytes against dirty payload + status).
pub const STATUS_MSG_BYTES: u64 = 16;

/// One protocol event of a co-executed kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// The host enqueued the kernel: the launch geometry every other event
    /// is judged against. Always the first event of a trace; the protocol
    /// linter reads `total_wgs` from here.
    Enqueued {
        /// Total flattened work-groups of the launch.
        total_wgs: u64,
        /// Configured pipeline depth: the bound on completed-but-unshipped
        /// CPU subkernels. Depth 1 is the serial protocol; the linter reads
        /// this to decide which send-ordering rules apply.
        pipeline_depth: u32,
    },
    /// The GPU kernel was launched (after scratch setup).
    GpuLaunch,
    /// A GPU wave over flattened work-groups `[from, to)` started.
    GpuWaveStart {
        /// First flattened work-group of the wave.
        from: u64,
        /// One past the last work-group of the wave.
        to: u64,
    },
    /// A wave completed; work-groups `[from, executed_to)` produced results
    /// (the rest had been covered by arrived CPU data mid-wave).
    GpuWaveDone {
        /// First flattened work-group of the wave.
        from: u64,
        /// One past the last work-group of the wave.
        to: u64,
        /// One past the last work-group that actually wrote results.
        executed_to: u64,
    },
    /// A running wave aborted at an in-loop check: the CPU had already
    /// covered everything from the wave's start (paper §6.4).
    GpuWaveAborted {
        /// First flattened work-group of the aborted wave.
        from: u64,
        /// One past the last work-group of the aborted wave.
        to: u64,
    },
    /// The GPU kernel exited (reached the CPU watermark).
    GpuExit,
    /// The diff-merge kernel finished on the GPU (paper §4.3).
    MergeDone,
    /// A CPU subkernel over `[from, to)` was launched with kernel version
    /// `version`.
    CpuSubkernelStart {
        /// First flattened work-group of the subkernel.
        from: u64,
        /// One past the last work-group of the subkernel.
        to: u64,
        /// Kernel version index used (paper §6.6).
        version: usize,
    },
    /// A CPU subkernel finished computing.
    CpuSubkernelDone {
        /// First flattened work-group of the subkernel.
        from: u64,
        /// One past the last work-group of the subkernel.
        to: u64,
    },
    /// CPU results + status were enqueued on the hd queue (paper §5.4).
    HdEnqueued {
        /// Completion boundary the status message will carry.
        boundary: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Coalesced dirty payload in bytes when dirty-range transfers
        /// are on (`bytes` must equal this plus [`STATUS_MSG_BYTES`]);
        /// `None` under the whole-buffer protocol.
        dirty_bytes: Option<u64>,
    },
    /// Results of several back-to-back completed subkernels were enqueued
    /// as **one** data payload + **one** status message (pipeline depth
    /// ≥ 2): their dirty ranges are unioned and the status carries the
    /// minimum boundary of the batch.
    CoalescedSend {
        /// Completion boundary the single status message will carry — the
        /// lowest `from` of the batched subkernels.
        boundary: u64,
        /// Combined payload size in bytes.
        bytes: u64,
        /// Unioned dirty payload in bytes when dirty-range transfers are
        /// on (`bytes` must equal this plus [`STATUS_MSG_BYTES`]); `None`
        /// under the whole-buffer protocol.
        dirty_bytes: Option<u64>,
        /// How many completed subkernels the batch carries (≥ 2).
        subkernels: u32,
    },
    /// A status message reached the GPU: everything at or above `boundary`
    /// is now CPU-complete *and* resident on the GPU (paper §4.2).
    StatusArrived {
        /// New completion watermark.
        boundary: u64,
    },
    /// The kernel completed from the host's perspective.
    KernelComplete {
        /// Which device established the final data.
        finisher: Finisher,
    },
    /// A transfer attempt failed transiently (detected at its expected
    /// completion instant) and will be retried after a backoff.
    TransferFault {
        /// Boundary the failed send carried.
        boundary: u64,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// A delivered transfer failed its payload/status checksum and was
    /// rejected; the sender resends.
    TransferRejected {
        /// Boundary the rejected send carried.
        boundary: u64,
    },
    /// A transfer missed its watchdog deadline: the hd link is abandoned
    /// and no further subkernels are shipped.
    TransferTimeout {
        /// Boundary the stalled send carried.
        boundary: u64,
    },
    /// A device missed a watchdog deadline and was declared lost.
    DeviceLost {
        /// The device that died.
        device: DeviceKind,
    },
    /// The surviving device executed work-groups `[from, to)` alone
    /// (single-device degraded mode after a permanent loss).
    DegradedRun {
        /// The surviving device.
        device: DeviceKind,
        /// First flattened work-group of the degraded run.
        from: u64,
        /// One past the last work-group of the degraded run.
        to: u64,
    },
    /// A non-owner endpoint launched a subkernel over a range it claimed
    /// from the shared frontier. Endpoint 0 is the CPU; endpoints 1 and up
    /// are peer GPUs. Only emitted on runs with more than one non-owner —
    /// two-device runs keep the legacy `CpuSubkernelStart` vocabulary.
    EpSubkernelStart {
        /// Endpoint index (0 = CPU, 1.. = peer GPUs).
        dev: u32,
        /// First flattened work-group of the subkernel.
        from: u64,
        /// One past the last work-group of the subkernel.
        to: u64,
        /// Kernel version index used (paper §6.6).
        version: usize,
    },
    /// A non-owner endpoint's subkernel finished computing.
    EpSubkernelDone {
        /// Endpoint index.
        dev: u32,
        /// First flattened work-group of the subkernel.
        from: u64,
        /// One past the last work-group of the subkernel.
        to: u64,
    },
    /// A non-owner endpoint enqueued results + one status message on its
    /// own upstream link (1 subkernel = the plain send, ≥ 2 = coalesced).
    EpSend {
        /// Endpoint index.
        dev: u32,
        /// Completion boundary the status message carries — the lowest
        /// `from` of the batched subkernels.
        boundary: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Unioned dirty payload in bytes when dirty-range transfers are
        /// on (`bytes` must equal this plus [`STATUS_MSG_BYTES`]); `None`
        /// under the whole-buffer protocol.
        dirty_bytes: Option<u64>,
        /// How many completed subkernels the send carries (≥ 1).
        subkernels: u32,
    },
    /// A non-owner endpoint's status message reached the owner: the send's
    /// ranges joined the coverage set, whose contiguous top suffix is the
    /// owner's new watermark.
    EpStatus {
        /// Endpoint index the status came from.
        dev: u32,
        /// Boundary the status message carried.
        boundary: u64,
        /// Owner watermark after folding this arrival into coverage.
        watermark: u64,
    },
    /// A non-owner endpoint's transfer attempt failed transiently and will
    /// be retried after a backoff.
    EpTransferFault {
        /// Endpoint index.
        dev: u32,
        /// Boundary the failed send carried.
        boundary: u64,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// A non-owner endpoint's delivered transfer failed its checksum and
    /// was rejected; the endpoint resends.
    EpTransferRejected {
        /// Endpoint index.
        dev: u32,
        /// Boundary the rejected send carried.
        boundary: u64,
    },
    /// A non-owner endpoint's transfer missed its watchdog deadline: that
    /// endpoint's link is abandoned (the other endpoints keep working).
    EpTransferTimeout {
        /// Endpoint index.
        dev: u32,
        /// Boundary the stalled send carried.
        boundary: u64,
    },
    /// A non-owner endpoint missed a subkernel watchdog deadline and was
    /// declared lost; its claimed-but-unshipped ranges return to the
    /// frontier for the survivors.
    NonOwnerLost {
        /// Endpoint index that died.
        dev: u32,
    },
    /// A surviving peer GPU was promoted to owner after the acting owner
    /// missed a wave watchdog: ownership migrated under a new epoch, the
    /// promoted peer inherited the coverage map, and its un-acked claims
    /// returned to the frontier.
    OwnerPromoted {
        /// Endpoint index of the promoted peer.
        dev: u32,
        /// Ownership epoch that begins with this promotion (the primary
        /// owner is epoch 0).
        epoch: u32,
    },
    /// The acting owner rejected a status whose send was enqueued under an
    /// older ownership epoch: the data went to a dead owner, so its ranges
    /// never join coverage (the new owner's wave walk re-covers them).
    EpochRejected {
        /// Endpoint whose stale send was rejected.
        dev: u32,
        /// Boundary the stale send carried.
        boundary: u64,
    },
    /// A surviving peer GPU executed work-groups `[from, to)` alone
    /// (degraded mode when both the CPU and every acting owner are gone).
    EpDegradedRun {
        /// Endpoint index of the surviving peer.
        dev: u32,
        /// First flattened work-group of the degraded run.
        from: u64,
        /// One past the last work-group of the degraded run.
        to: u64,
    },
    /// A graph-scheduled node executed work-groups `[from, to)` alone on
    /// one endpoint while sibling nodes of the same flushed DAG ran
    /// elsewhere (`with_graph_scheduling`). Endpoint indices follow the
    /// Ep* vocabulary: 1.. are peer GPUs. Nodes placed on the owner
    /// co-execution lane keep the legacy two-device trace instead.
    GraphRun {
        /// Node index within the flushed graph (enqueue order).
        node: u32,
        /// Endpoint index the node ran on.
        dev: u32,
        /// First flattened work-group of the run.
        from: u64,
        /// One past the last work-group of the run.
        to: u64,
    },
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Enqueued {
                total_wgs,
                pipeline_depth,
            } => {
                // Depth 1 renders exactly the historical serial-protocol
                // line so pre-pipeline traces stay byte-identical.
                if *pipeline_depth <= 1 {
                    write!(f, "[all] kernel enqueued ({total_wgs} work-groups)")
                } else {
                    write!(
                        f,
                        "[all] kernel enqueued ({total_wgs} work-groups, pipeline depth {pipeline_depth})"
                    )
                }
            }
            TraceKind::GpuLaunch => write!(f, "[gpu] kernel launched"),
            TraceKind::GpuWaveStart { from, to } => {
                write!(f, "[gpu] wave {from}..{to} start")
            }
            TraceKind::GpuWaveDone {
                from,
                to,
                executed_to,
            } => {
                if executed_to == to {
                    write!(f, "[gpu] wave {from}..{to} done")
                } else {
                    write!(
                        f,
                        "[gpu] wave {from}..{to} done (wrote {from}..{executed_to}, rest covered by cpu)"
                    )
                }
            }
            TraceKind::GpuWaveAborted { from, to } => {
                write!(f, "[gpu] wave {from}..{to} ABORTED (cpu covered it)")
            }
            TraceKind::GpuExit => write!(f, "[gpu] kernel exit"),
            TraceKind::MergeDone => write!(f, "[gpu] diff-merge done"),
            TraceKind::CpuSubkernelStart { from, to, version } => {
                write!(f, "[cpu] subkernel {from}..{to} start (version {version})")
            }
            TraceKind::CpuSubkernelDone { from, to } => {
                write!(f, "[cpu] subkernel {from}..{to} done")
            }
            TraceKind::HdEnqueued {
                boundary,
                bytes,
                dirty_bytes,
            } => match dirty_bytes {
                // No dirty accounting: render exactly the whole-buffer
                // protocol line so gate-off traces stay byte-identical.
                None => write!(
                    f,
                    "[hd ] data+status enqueued (boundary {boundary}, {bytes} B)"
                ),
                Some(d) => write!(
                    f,
                    "[hd ] data+status enqueued (boundary {boundary}, {bytes} B, dirty {d} B)"
                ),
            },
            TraceKind::CoalescedSend {
                boundary,
                bytes,
                dirty_bytes,
                subkernels,
            } => match dirty_bytes {
                None => write!(
                    f,
                    "[hd ] coalesced data+status enqueued ({subkernels} subkernels, boundary {boundary}, {bytes} B)"
                ),
                Some(d) => write!(
                    f,
                    "[hd ] coalesced data+status enqueued ({subkernels} subkernels, boundary {boundary}, {bytes} B, dirty {d} B)"
                ),
            },
            TraceKind::StatusArrived { boundary } => {
                write!(f, "[hd ] status arrived: watermark -> {boundary}")
            }
            TraceKind::KernelComplete { finisher } => {
                write!(f, "[all] kernel complete (finished by {finisher:?})")
            }
            TraceKind::TransferFault { boundary, attempt } => {
                write!(
                    f,
                    "[flt] transfer for boundary {boundary} failed (attempt {attempt}), retrying"
                )
            }
            TraceKind::TransferRejected { boundary } => {
                write!(
                    f,
                    "[flt] transfer for boundary {boundary} failed checksum, resending"
                )
            }
            TraceKind::TransferTimeout { boundary } => {
                write!(
                    f,
                    "[flt] transfer for boundary {boundary} missed its deadline, link abandoned"
                )
            }
            TraceKind::DeviceLost { device } => {
                write!(f, "[flt] {} lost (watchdog deadline missed)", device.name())
            }
            TraceKind::DegradedRun { device, from, to } => {
                write!(f, "[deg] {} finishing {from}..{to} alone", device.name())
            }
            TraceKind::EpSubkernelStart {
                dev,
                from,
                to,
                version,
            } => {
                write!(
                    f,
                    "[ep{dev}] subkernel {from}..{to} start (version {version})"
                )
            }
            TraceKind::EpSubkernelDone { dev, from, to } => {
                write!(f, "[ep{dev}] subkernel {from}..{to} done")
            }
            TraceKind::EpSend {
                dev,
                boundary,
                bytes,
                dirty_bytes,
                subkernels,
            } => match dirty_bytes {
                None => write!(
                    f,
                    "[ep{dev}] data+status enqueued ({subkernels} subkernels, boundary {boundary}, {bytes} B)"
                ),
                Some(d) => write!(
                    f,
                    "[ep{dev}] data+status enqueued ({subkernels} subkernels, boundary {boundary}, {bytes} B, dirty {d} B)"
                ),
            },
            TraceKind::EpStatus {
                dev,
                boundary,
                watermark,
            } => {
                write!(
                    f,
                    "[ep{dev}] status arrived (boundary {boundary}): watermark -> {watermark}"
                )
            }
            TraceKind::EpTransferFault {
                dev,
                boundary,
                attempt,
            } => {
                write!(
                    f,
                    "[flt] ep{dev} transfer for boundary {boundary} failed (attempt {attempt}), retrying"
                )
            }
            TraceKind::EpTransferRejected { dev, boundary } => {
                write!(
                    f,
                    "[flt] ep{dev} transfer for boundary {boundary} failed checksum, resending"
                )
            }
            TraceKind::EpTransferTimeout { dev, boundary } => {
                write!(
                    f,
                    "[flt] ep{dev} transfer for boundary {boundary} missed its deadline, link abandoned"
                )
            }
            TraceKind::NonOwnerLost { dev } => {
                write!(f, "[flt] ep{dev} lost (watchdog deadline missed)")
            }
            TraceKind::OwnerPromoted { dev, epoch } => {
                write!(f, "[flt] ep{dev} promoted to owner (epoch {epoch})")
            }
            TraceKind::EpochRejected { dev, boundary } => {
                write!(
                    f,
                    "[flt] ep{dev} status for boundary {boundary} rejected (stale epoch)"
                )
            }
            TraceKind::EpDegradedRun { dev, from, to } => {
                write!(f, "[deg] ep{dev} finishing {from}..{to} alone")
            }
            TraceKind::GraphRun {
                node,
                dev,
                from,
                to,
            } => {
                write!(f, "[gph] node {node} ran {from}..{to} on ep{dev}")
            }
        }
    }
}

/// A timestamped protocol event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Renders a kernel's trace as a chronological text timeline.
///
/// # Examples
///
/// ```
/// use fluidicl::{render_timeline, TraceEvent, TraceKind};
/// use fluidicl_des::SimTime;
///
/// let events = vec![TraceEvent {
///     at: SimTime::from_nanos(1_000),
///     kind: TraceKind::GpuLaunch,
/// }];
/// let text = render_timeline("syrk", &events);
/// assert!(text.contains("syrk"));
/// assert!(text.contains("kernel launched"));
/// ```
pub fn render_timeline(kernel: &str, events: &[TraceEvent]) -> String {
    let mut out = format!("timeline of `{kernel}` ({} events)\n", events.len());
    let t0 = events.first().map_or(SimTime::ZERO, |e| e.at);
    for e in events {
        let rel = e.at.saturating_since(t0);
        out.push_str(&format!(
            "  +{:>10.3}us  {}\n",
            rel.as_nanos() as f64 / 1e3,
            e.kind
        ));
    }
    out
}

/// Renders a compact per-lane utilization view of a kernel's trace: one
/// lane per actor (GPU, CPU, hd channel), each event bucketed into a
/// fixed-width strip. Coarser than [`render_timeline`] but shows overlap at
/// a glance.
///
/// # Examples
///
/// ```
/// use fluidicl::{render_lanes, TraceEvent, TraceKind};
/// use fluidicl_des::SimTime;
///
/// let events = vec![
///     TraceEvent { at: SimTime::from_nanos(0), kind: TraceKind::GpuLaunch },
///     TraceEvent { at: SimTime::from_nanos(500), kind: TraceKind::GpuExit },
/// ];
/// let text = render_lanes("k", &events, 40);
/// assert!(text.contains("gpu"));
/// ```
pub fn render_lanes(kernel: &str, events: &[TraceEvent], width: usize) -> String {
    let width = width.max(10);
    let (Some(first), Some(last)) = (events.first(), events.last()) else {
        return format!("lanes of `{kernel}`: no events\n");
    };
    let t0 = first.at;
    let span = last.at.saturating_since(t0).as_nanos().max(1);
    let mut gpu = vec![' '; width];
    let mut cpu = vec![' '; width];
    let mut hd = vec![' '; width];
    let bucket = |at: SimTime| -> usize {
        let rel = at.saturating_since(t0).as_nanos();
        (((rel as u128 * (width as u128 - 1)) / span as u128) as usize).min(width - 1)
    };
    for e in events {
        let b = bucket(e.at);
        match &e.kind {
            // The enqueue is a host-side bookkeeping event with no lane.
            TraceKind::Enqueued { .. } => {}
            TraceKind::GpuLaunch => gpu[b] = 'L',
            TraceKind::GpuWaveStart { .. } => gpu[b] = '[',
            TraceKind::GpuWaveDone { .. } => gpu[b] = ']',
            TraceKind::GpuWaveAborted { .. } => gpu[b] = 'x',
            TraceKind::GpuExit => gpu[b] = 'E',
            TraceKind::MergeDone => gpu[b] = 'M',
            TraceKind::CpuSubkernelStart { .. } => cpu[b] = '[',
            TraceKind::CpuSubkernelDone { .. } => cpu[b] = ']',
            TraceKind::HdEnqueued { .. } => hd[b] = '>',
            // A coalesced batch is still one send on the hd lane.
            TraceKind::CoalescedSend { .. } => hd[b] = '>',
            TraceKind::StatusArrived { .. } => hd[b] = '*',
            TraceKind::KernelComplete { .. } => gpu[b] = '!',
            TraceKind::TransferFault { .. } => hd[b] = 'f',
            TraceKind::TransferRejected { .. } => hd[b] = 'r',
            TraceKind::TransferTimeout { .. } => hd[b] = 'T',
            TraceKind::DeviceLost { device } => match device {
                DeviceKind::Gpu => gpu[b] = 'X',
                DeviceKind::Cpu => cpu[b] = 'X',
            },
            TraceKind::DegradedRun { device, .. } => match device {
                DeviceKind::Gpu => gpu[b] = 'D',
                DeviceKind::Cpu => cpu[b] = 'D',
            },
            // N-device vocabulary: every non-owner endpoint computes on the
            // cpu lane and ships on the hd lane. Legacy traces never carry
            // these variants, so the two-device rendering is untouched.
            TraceKind::EpSubkernelStart { .. } => cpu[b] = '[',
            TraceKind::EpSubkernelDone { .. } => cpu[b] = ']',
            TraceKind::EpSend { .. } => hd[b] = '>',
            TraceKind::EpStatus { .. } => hd[b] = '*',
            TraceKind::EpTransferFault { .. } => hd[b] = 'f',
            TraceKind::EpTransferRejected { .. } => hd[b] = 'r',
            TraceKind::EpTransferTimeout { .. } => hd[b] = 'T',
            TraceKind::NonOwnerLost { .. } => cpu[b] = 'X',
            // Failover vocabulary: the promoted peer takes over the gpu
            // (owner) lane; a stale-epoch rejection is link traffic.
            TraceKind::OwnerPromoted { .. } => gpu[b] = 'P',
            TraceKind::EpochRejected { .. } => hd[b] = 'e',
            TraceKind::EpDegradedRun { .. } => gpu[b] = 'D',
            // A graph node on a peer endpoint occupies that device's
            // compute; the gpu lane shows the sole-device run.
            TraceKind::GraphRun { .. } => gpu[b] = 'G',
        }
    }
    let lane =
        |name: &str, cells: &[char]| format!("  {name:4}|{}|\n", cells.iter().collect::<String>());
    let mut out = format!(
        "lanes of `{kernel}` over {:.1}us ([ start, ] done, x abort, > send, * status, M merge, ! complete)\n",
        span as f64 / 1e3
    );
    out.push_str(&lane("gpu", &gpu));
    out.push_str(&lane("cpu", &cpu));
    out.push_str(&lane("hd", &hd));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ns),
            kind,
        }
    }

    #[test]
    fn display_covers_every_variant() {
        let kinds = vec![
            TraceKind::Enqueued {
                total_wgs: 120,
                pipeline_depth: 1,
            },
            TraceKind::Enqueued {
                total_wgs: 120,
                pipeline_depth: 4,
            },
            TraceKind::GpuLaunch,
            TraceKind::GpuWaveStart { from: 0, to: 84 },
            TraceKind::GpuWaveDone {
                from: 0,
                to: 84,
                executed_to: 84,
            },
            TraceKind::GpuWaveDone {
                from: 84,
                to: 120,
                executed_to: 100,
            },
            TraceKind::GpuWaveAborted { from: 84, to: 120 },
            TraceKind::GpuExit,
            TraceKind::MergeDone,
            TraceKind::CpuSubkernelStart {
                from: 200,
                to: 256,
                version: 1,
            },
            TraceKind::CpuSubkernelDone { from: 200, to: 256 },
            TraceKind::HdEnqueued {
                boundary: 200,
                bytes: 4096,
                dirty_bytes: None,
            },
            TraceKind::HdEnqueued {
                boundary: 200,
                bytes: 4096 + STATUS_MSG_BYTES,
                dirty_bytes: Some(4096),
            },
            TraceKind::CoalescedSend {
                boundary: 150,
                bytes: 8192,
                dirty_bytes: None,
                subkernels: 2,
            },
            TraceKind::CoalescedSend {
                boundary: 150,
                bytes: 8192 + STATUS_MSG_BYTES,
                dirty_bytes: Some(8192),
                subkernels: 3,
            },
            TraceKind::StatusArrived { boundary: 200 },
            TraceKind::KernelComplete {
                finisher: Finisher::Gpu,
            },
            TraceKind::TransferFault {
                boundary: 200,
                attempt: 1,
            },
            TraceKind::TransferRejected { boundary: 200 },
            TraceKind::TransferTimeout { boundary: 200 },
            TraceKind::DeviceLost {
                device: DeviceKind::Gpu,
            },
            TraceKind::DegradedRun {
                device: DeviceKind::Cpu,
                from: 0,
                to: 120,
            },
            TraceKind::EpSubkernelStart {
                dev: 1,
                from: 100,
                to: 150,
                version: 0,
            },
            TraceKind::EpSubkernelDone {
                dev: 1,
                from: 100,
                to: 150,
            },
            TraceKind::EpSend {
                dev: 1,
                boundary: 100,
                bytes: 2048 + STATUS_MSG_BYTES,
                dirty_bytes: Some(2048),
                subkernels: 1,
            },
            TraceKind::EpSend {
                dev: 0,
                boundary: 150,
                bytes: 4096,
                dirty_bytes: None,
                subkernels: 2,
            },
            TraceKind::EpStatus {
                dev: 1,
                boundary: 100,
                watermark: 100,
            },
            TraceKind::EpTransferFault {
                dev: 1,
                boundary: 100,
                attempt: 1,
            },
            TraceKind::EpTransferRejected {
                dev: 1,
                boundary: 100,
            },
            TraceKind::EpTransferTimeout {
                dev: 1,
                boundary: 100,
            },
            TraceKind::NonOwnerLost { dev: 1 },
            TraceKind::OwnerPromoted { dev: 1, epoch: 1 },
            TraceKind::EpochRejected {
                dev: 0,
                boundary: 100,
            },
            TraceKind::EpDegradedRun {
                dev: 1,
                from: 0,
                to: 120,
            },
            TraceKind::GraphRun {
                node: 1,
                dev: 2,
                from: 0,
                to: 120,
            },
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }

    #[test]
    fn graph_run_renders_node_and_endpoint() {
        let k = TraceKind::GraphRun {
            node: 3,
            dev: 1,
            from: 0,
            to: 64,
        };
        assert_eq!(k.to_string(), "[gph] node 3 ran 0..64 on ep1");
        let events = vec![ev(0, TraceKind::GpuLaunch), ev(100, k)];
        let text = render_lanes("k", &events, 40);
        assert!(text.contains('G'), "graph run marks the gpu lane: {text}");
    }

    #[test]
    fn failover_events_render_with_their_devices() {
        assert_eq!(
            TraceKind::OwnerPromoted { dev: 2, epoch: 1 }.to_string(),
            "[flt] ep2 promoted to owner (epoch 1)"
        );
        assert_eq!(
            TraceKind::EpochRejected {
                dev: 0,
                boundary: 48
            }
            .to_string(),
            "[flt] ep0 status for boundary 48 rejected (stale epoch)"
        );
        assert_eq!(
            TraceKind::EpDegradedRun {
                dev: 1,
                from: 0,
                to: 64
            }
            .to_string(),
            "[deg] ep1 finishing 0..64 alone"
        );
        let events = vec![
            ev(0, TraceKind::OwnerPromoted { dev: 1, epoch: 1 }),
            ev(
                100,
                TraceKind::EpochRejected {
                    dev: 0,
                    boundary: 48,
                },
            ),
        ];
        let text = render_lanes("k", &events, 40);
        assert!(text.contains('P'), "promotion marks the gpu lane: {text}");
        assert!(text.contains('e'), "rejection marks the hd lane: {text}");
    }

    #[test]
    fn ep_events_carry_their_device_index() {
        let send = TraceKind::EpSend {
            dev: 1,
            boundary: 8,
            bytes: 128 + STATUS_MSG_BYTES,
            dirty_bytes: Some(128),
            subkernels: 2,
        };
        assert_eq!(
            send.to_string(),
            "[ep1] data+status enqueued (2 subkernels, boundary 8, 144 B, dirty 128 B)"
        );
        let status = TraceKind::EpStatus {
            dev: 0,
            boundary: 8,
            watermark: 8,
        };
        assert_eq!(
            status.to_string(),
            "[ep0] status arrived (boundary 8): watermark -> 8"
        );
        let events = vec![
            ev(
                0,
                TraceKind::EpSubkernelStart {
                    dev: 1,
                    from: 8,
                    to: 16,
                    version: 0,
                },
            ),
            ev(
                50,
                TraceKind::EpSubkernelDone {
                    dev: 1,
                    from: 8,
                    to: 16,
                },
            ),
            ev(100, send),
            ev(200, status),
            ev(300, TraceKind::NonOwnerLost { dev: 1 }),
        ];
        let text = render_lanes("k", &events, 40);
        assert!(text.contains('>'), "ep send marks the hd lane: {text}");
        assert!(text.contains('X'), "ep loss marks the cpu lane: {text}");
    }

    #[test]
    fn hd_enqueued_renders_identically_without_dirty_accounting() {
        // The gate-off line must stay byte-identical to the historical
        // whole-buffer protocol rendering.
        let off = TraceKind::HdEnqueued {
            boundary: 3,
            bytes: 80,
            dirty_bytes: None,
        };
        assert_eq!(
            off.to_string(),
            "[hd ] data+status enqueued (boundary 3, 80 B)"
        );
        let on = TraceKind::HdEnqueued {
            boundary: 3,
            bytes: 48 + STATUS_MSG_BYTES,
            dirty_bytes: Some(48),
        };
        assert_eq!(
            on.to_string(),
            "[hd ] data+status enqueued (boundary 3, 64 B, dirty 48 B)"
        );
    }

    #[test]
    fn serial_enqueue_renders_the_historical_line() {
        // Depth 1 must stay byte-identical to the pre-pipeline rendering;
        // deeper pipelines announce themselves.
        let serial = TraceKind::Enqueued {
            total_wgs: 16,
            pipeline_depth: 1,
        };
        assert_eq!(serial.to_string(), "[all] kernel enqueued (16 work-groups)");
        let deep = TraceKind::Enqueued {
            total_wgs: 16,
            pipeline_depth: 2,
        };
        assert_eq!(
            deep.to_string(),
            "[all] kernel enqueued (16 work-groups, pipeline depth 2)"
        );
    }

    #[test]
    fn coalesced_send_renders_batch_size_and_boundary() {
        let k = TraceKind::CoalescedSend {
            boundary: 8,
            bytes: 128 + STATUS_MSG_BYTES,
            dirty_bytes: Some(128),
            subkernels: 2,
        };
        assert_eq!(
            k.to_string(),
            "[hd ] coalesced data+status enqueued (2 subkernels, boundary 8, 144 B, dirty 128 B)"
        );
        let events = vec![ev(0, TraceKind::GpuLaunch), ev(100, k)];
        let text = render_lanes("k", &events, 40);
        assert!(text.contains('>'), "batch send marks the hd lane: {text}");
    }

    #[test]
    fn timeline_is_relative_to_first_event() {
        let events = vec![
            ev(5_000, TraceKind::GpuLaunch),
            ev(8_000, TraceKind::GpuExit),
        ];
        let text = render_timeline("k", &events);
        assert!(text.contains("+     0.000us"), "{text}");
        assert!(text.contains("+     3.000us"), "{text}");
    }

    #[test]
    fn lanes_render_all_actors() {
        let events = vec![
            ev(
                0,
                TraceKind::CpuSubkernelStart {
                    from: 8,
                    to: 16,
                    version: 0,
                },
            ),
            ev(100, TraceKind::CpuSubkernelDone { from: 8, to: 16 }),
            ev(
                120,
                TraceKind::HdEnqueued {
                    boundary: 8,
                    bytes: 64,
                    dirty_bytes: None,
                },
            ),
            ev(200, TraceKind::GpuLaunch),
            ev(300, TraceKind::StatusArrived { boundary: 8 }),
            ev(400, TraceKind::GpuExit),
            ev(
                500,
                TraceKind::KernelComplete {
                    finisher: Finisher::Gpu,
                },
            ),
        ];
        let text = render_lanes("k", &events, 50);
        assert!(text.contains("gpu"), "{text}");
        assert!(text.contains('*'), "status marker missing: {text}");
        assert!(text.contains('>'), "send marker missing: {text}");
        assert!(text.contains('!'), "complete marker missing: {text}");
    }

    #[test]
    fn lanes_handle_empty_trace() {
        assert!(render_lanes("k", &[], 40).contains("no events"));
    }

    #[test]
    fn fault_events_render_with_their_own_markers() {
        let events = vec![
            ev(
                0,
                TraceKind::TransferFault {
                    boundary: 8,
                    attempt: 1,
                },
            ),
            ev(
                100,
                TraceKind::DeviceLost {
                    device: DeviceKind::Gpu,
                },
            ),
            ev(
                200,
                TraceKind::DegradedRun {
                    device: DeviceKind::Cpu,
                    from: 0,
                    to: 16,
                },
            ),
        ];
        let text = render_lanes("k", &events, 40);
        assert!(text.contains('f'), "fault marker missing: {text}");
        assert!(text.contains('X'), "loss marker missing: {text}");
        assert!(text.contains('D'), "degraded marker missing: {text}");
        // The legend line itself is unchanged from the fault-free renderer.
        assert!(text.starts_with(
            "lanes of `k` over 0.2us ([ start, ] done, x abort, > send, * status, M merge, ! complete)\n"
        ));
    }

    #[test]
    fn partial_wave_mentions_cpu_coverage() {
        let k = TraceKind::GpuWaveDone {
            from: 0,
            to: 10,
            executed_to: 7,
        };
        assert!(k.to_string().contains("covered by cpu"));
    }
}
