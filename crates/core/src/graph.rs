//! Kernel-graph dependence analysis (`with_graph_scheduling`).
//!
//! When graph scheduling is on, the runtime defers enqueued launches into a
//! DAG instead of executing them immediately. This module derives the
//! edges: for every pair of deferred launches that touch a common buffer,
//! the per-arg [`AccessPattern`] declarations are walked symbolically over
//! the *whole* NDRange and the element footprints intersected —
//!
//! * **true** dependence: an earlier write overlaps a later read (the data
//!   must flow);
//! * **anti** dependence: an earlier read overlaps a later write (the read
//!   must see the pre-write value);
//! * **output** dependence: two writes overlap (last-writer-wins order).
//!
//! Arguments with no declaration — and [`AccessPattern::Custom`] shapes,
//! whose closures the builder does not evaluate — conservatively fall back
//! to a whole-buffer footprint, so a missing declaration can only *add*
//! edges, never drop one. The sanitizer's shadow write-maps give the same
//! guarantee from the other side: `fluidicl-check` replays each launch and
//! cross-checks that every observed conflict has an edge here.
//!
//! Nodes with no path between them are independent and may run
//! concurrently on different devices; [`crate::heft`] picks the placement.

use fluidicl_des::SimTime;
use fluidicl_vcl::{AccessPattern, ArgRole, BufferId, DirtyRanges, Launch};

/// Kind of a dependence edge between two graph nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write: the successor consumes elements the predecessor
    /// produced.
    True,
    /// Write-after-read: the successor overwrites elements the predecessor
    /// reads.
    Anti,
    /// Write-after-write: both nodes write overlapping elements.
    Output,
}

impl DepKind {
    /// Short stable label for rendering and JSON.
    pub fn label(self) -> &'static str {
        match self {
            DepKind::True => "true",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

/// One dependence edge: node `from` must complete before node `to` starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphEdge {
    /// Index of the earlier (producing) node in enqueue order.
    pub from: usize,
    /// Index of the later (consuming) node in enqueue order.
    pub to: usize,
    /// The buffer the conflict is on.
    pub buffer: BufferId,
    /// Conflict kind.
    pub kind: DepKind,
    /// Bytes in the overlap — the data volume a cross-device placement of
    /// a *true* edge would have to move (anti/output edges order execution
    /// but move nothing).
    pub overlap_bytes: u64,
}

/// Element footprints of one deferred launch: which ranges of which
/// buffers it reads and writes, at whole-launch granularity.
#[derive(Clone, Debug)]
pub struct NodeAccess {
    /// Kernel name (for diagnostics and profiling keys).
    pub kernel: String,
    /// Per-buffer read footprints (`In` and `InOut` arguments, merged).
    pub reads: Vec<(BufferId, DirtyRanges)>,
    /// Per-buffer write footprints (`Out` and `InOut` arguments, merged).
    pub writes: Vec<(BufferId, DirtyRanges)>,
}

/// Derives the read/write footprints of one launch from its kernel's
/// per-arg [`AccessPattern`] declarations. `len_of` supplies buffer
/// lengths (the builder runs before any device sees the launch, so
/// lengths come from the buffer table). Undeclared and `Custom` patterns
/// fall back to the whole buffer.
///
/// # Errors
///
/// Propagates signature validation errors from the launch plan.
pub fn node_access(
    launch: &Launch,
    mut len_of: impl FnMut(BufferId) -> usize,
) -> fluidicl_vcl::ClResult<NodeAccess> {
    let plan = launch.plan()?;
    let total = launch.ndrange.num_groups();
    let mut reads: Vec<(BufferId, DirtyRanges)> = Vec::new();
    let mut writes: Vec<(BufferId, DirtyRanges)> = Vec::new();
    let add = |side: &mut Vec<(BufferId, DirtyRanges)>, id: BufferId, fp: DirtyRanges| {
        if let Some((_, have)) = side.iter_mut().find(|(b, _)| *b == id) {
            *have = have.union(&fp);
        } else {
            side.push((id, fp));
        }
    };
    for (spec, arg) in launch.kernel.args().iter().zip(&launch.args) {
        if !spec.role.is_buffer() {
            continue;
        }
        let &fluidicl_vcl::KernelArg::Buffer(id) = arg else {
            continue;
        };
        let len = len_of(id);
        let fp = match &spec.access {
            // Custom closures are not evaluated here: the builder promises
            // conservative edges, not exact ones (ISSUE 10).
            Some(AccessPattern::Custom(_)) | None => DirtyRanges::full(len),
            Some(p) => p.footprint(&launch.ndrange, &plan.scalars, len, 0, total),
        };
        match spec.role {
            ArgRole::In => add(&mut reads, id, fp),
            ArgRole::Out => add(&mut writes, id, fp),
            ArgRole::InOut => {
                add(&mut reads, id, fp.clone());
                add(&mut writes, id, fp);
            }
            ArgRole::Scalar => unreachable!("scalars filtered above"),
        }
    }
    Ok(NodeAccess {
        kernel: launch.kernel.name().to_string(),
        reads,
        writes,
    })
}

/// Builds the dependence edges over nodes in enqueue order: for every pair
/// `i < j` sharing a buffer, emits one edge per overlapping (buffer, kind)
/// combination. Program order between conflicting nodes is preserved;
/// nodes with no edge path between them are free to run concurrently.
pub fn build_edges(nodes: &[NodeAccess]) -> Vec<GraphEdge> {
    let mut edges = Vec::new();
    let overlap = |a: &[(BufferId, DirtyRanges)], b: &[(BufferId, DirtyRanges)]| {
        let mut hits: Vec<(BufferId, u64)> = Vec::new();
        for (id, fa) in a {
            for (jd, fb) in b {
                if id == jd {
                    let both = fa.intersect(fb);
                    if !both.is_empty() {
                        hits.push((*id, both.byte_count()));
                    }
                }
            }
        }
        hits
    };
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            for (buffer, bytes) in overlap(&nodes[i].writes, &nodes[j].reads) {
                edges.push(GraphEdge {
                    from: i,
                    to: j,
                    buffer,
                    kind: DepKind::True,
                    overlap_bytes: bytes,
                });
            }
            for (buffer, bytes) in overlap(&nodes[i].reads, &nodes[j].writes) {
                edges.push(GraphEdge {
                    from: i,
                    to: j,
                    buffer,
                    kind: DepKind::Anti,
                    overlap_bytes: bytes,
                });
            }
            for (buffer, bytes) in overlap(&nodes[i].writes, &nodes[j].writes) {
                edges.push(GraphEdge {
                    from: i,
                    to: j,
                    buffer,
                    kind: DepKind::Output,
                    overlap_bytes: bytes,
                });
            }
        }
    }
    edges
}

/// What one flushed graph node did: where it ran and when, plus the
/// footprints its edges were derived from. Exposed through
/// [`Fluidicl::graph_schedules`](crate::Fluidicl::graph_schedules) so
/// external checkers (`fluidicl-check`) can re-derive the conflict pairs
/// and verify every one is ordered by an edge.
#[derive(Clone, Debug)]
pub struct GraphNodeSummary {
    /// Node index in enqueue order.
    pub node: usize,
    /// Kernel name.
    pub kernel: String,
    /// Runtime kernel id assigned at flush.
    pub kernel_id: u64,
    /// Execution lane: 0 is the owner co-execution path (CPU + owner
    /// GPU), lane `p >= 1` is peer GPU `p` running the node alone.
    pub lane: usize,
    /// When the node's device work started.
    pub start_at: SimTime,
    /// When the node's results were complete.
    pub complete_at: SimTime,
    /// Per-buffer read footprints used to build edges.
    pub reads: Vec<(BufferId, DirtyRanges)>,
    /// Per-buffer write footprints used to build edges.
    pub writes: Vec<(BufferId, DirtyRanges)>,
}

/// One flushed kernel graph: the nodes with their placements/times and
/// the dependence edges that constrained them.
#[derive(Clone, Debug)]
pub struct GraphSchedule {
    /// Nodes in enqueue order.
    pub nodes: Vec<GraphNodeSummary>,
    /// Footprint-derived dependence edges.
    pub edges: Vec<GraphEdge>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl_hetsim::KernelProfile;
    use fluidicl_vcl::{ArgSpec, KernelArg, KernelDef, NdRange};
    use std::sync::Arc;

    fn row_kernel(name: &str, out_access: Option<AccessPattern>) -> Arc<KernelDef> {
        let mut out_spec = ArgSpec::new("dst", ArgRole::Out);
        if let Some(a) = out_access {
            out_spec = out_spec.with_access(a);
        }
        Arc::new(KernelDef::new(
            name,
            vec![
                ArgSpec::new("src", ArgRole::In).with_access(AccessPattern::Row {
                    dim: 1,
                    width_scalar: 0,
                }),
                out_spec,
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            KernelProfile::new(name),
            |item, scalars, ins, outs| {
                let n = scalars.usize(0);
                let at = item.global[1] * n + item.global[0];
                let v = ins.get(0)[at];
                outs.at(0)[at] = v + 1.0;
            },
        ))
    }

    fn launch_of(kernel: Arc<KernelDef>, n: usize, src: u64, dst: u64) -> Launch {
        Launch::new(
            kernel,
            NdRange::d2(n, n, n, 1).expect("ndrange"),
            vec![
                KernelArg::Buffer(BufferId(src)),
                KernelArg::Buffer(BufferId(dst)),
                KernelArg::Usize(n),
            ],
        )
    }

    #[test]
    fn independent_launches_get_no_edges() {
        let k = row_kernel(
            "inc",
            Some(AccessPattern::Row {
                dim: 1,
                width_scalar: 0,
            }),
        );
        let a = launch_of(k.clone(), 4, 0, 1);
        let b = launch_of(k, 4, 2, 3);
        let nodes = vec![
            node_access(&a, |_| 16).expect("access a"),
            node_access(&b, |_| 16).expect("access b"),
        ];
        assert!(build_edges(&nodes).is_empty(), "disjoint buffers: no edges");
    }

    #[test]
    fn chained_launches_get_true_edge_with_overlap_bytes() {
        let k = row_kernel(
            "inc",
            Some(AccessPattern::Row {
                dim: 1,
                width_scalar: 0,
            }),
        );
        // a writes buffer 1; b reads buffer 1 and writes buffer 2.
        let a = launch_of(k.clone(), 4, 0, 1);
        let b = launch_of(k, 4, 1, 2);
        let nodes = vec![
            node_access(&a, |_| 16).expect("access a"),
            node_access(&b, |_| 16).expect("access b"),
        ];
        let edges = build_edges(&nodes);
        assert_eq!(
            edges,
            vec![GraphEdge {
                from: 0,
                to: 1,
                buffer: BufferId(1),
                kind: DepKind::True,
                overlap_bytes: 16 * 4,
            }]
        );
    }

    #[test]
    fn anti_and_output_edges_are_detected() {
        let k = row_kernel(
            "inc",
            Some(AccessPattern::Row {
                dim: 1,
                width_scalar: 0,
            }),
        );
        // a reads 0 writes 1; b reads 2 writes 0 (anti on 0); c reads 2
        // writes 1 (output on 1 vs a).
        let a = launch_of(k.clone(), 4, 0, 1);
        let b = launch_of(k.clone(), 4, 2, 0);
        let c = launch_of(k, 4, 2, 1);
        let nodes: Vec<NodeAccess> = [&a, &b, &c]
            .iter()
            .map(|l| node_access(l, |_| 16).expect("access"))
            .collect();
        let edges = build_edges(&nodes);
        assert!(edges.iter().any(|e| e.from == 0
            && e.to == 1
            && e.buffer == BufferId(0)
            && e.kind == DepKind::Anti));
        assert!(edges.iter().any(|e| e.from == 0
            && e.to == 2
            && e.buffer == BufferId(1)
            && e.kind == DepKind::Output));
        // b and c only share reads of buffer 2: no edge between them.
        assert!(!edges.iter().any(|e| e.from == 1 && e.to == 2));
    }

    #[test]
    fn undeclared_output_falls_back_to_whole_buffer() {
        let k = row_kernel("inc", None);
        let a = launch_of(k.clone(), 4, 0, 1);
        let access = node_access(&a, |_| 16).expect("access");
        let (_, fp) = &access.writes[0];
        assert!(fp.is_full(16), "no declaration covers the whole buffer");
        // Two such launches writing disjoint *actual* rows still conflict
        // conservatively.
        let b = launch_of(k, 4, 2, 1);
        let nodes = vec![access, node_access(&b, |_| 16).expect("access b")];
        assert!(build_edges(&nodes)
            .iter()
            .any(|e| e.kind == DepKind::Output));
    }

    #[test]
    fn custom_pattern_falls_back_to_whole_buffer() {
        let k = row_kernel(
            "inc",
            Some(AccessPattern::custom(|_, _, _| vec![(0usize, 1usize)])),
        );
        let a = launch_of(k, 4, 0, 1);
        let access = node_access(&a, |_| 16).expect("access");
        let (_, fp) = &access.writes[0];
        assert!(
            fp.is_full(16),
            "custom closures are not evaluated by the builder"
        );
    }

    #[test]
    fn dep_kind_labels_are_stable() {
        assert_eq!(DepKind::True.label(), "true");
        assert_eq!(DepKind::Anti.label(), "anti");
        assert_eq!(DepKind::Output.label(), "output");
    }
}
