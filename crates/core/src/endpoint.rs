//! Non-owner endpoint cost models for N-way co-execution.
//!
//! The paper's protocol has exactly one non-owner: the CPU, whose
//! "subkernel → intermediate copy → data+status ship" loop is priced with
//! the CPU, host and h2d models. Generalizing to N devices means that loop
//! must run against *any* worker that can compute a claimed range and ship
//! results to the owner — so the loop's cost surface is extracted into
//! [`NonOwnerEndpoint`], with one implementation per device class:
//!
//! * [`CpuEndpoint`] — the paper's CPU: multicore subkernels, a host
//!   staging memcpy, and the machine's h2d link.
//! * [`PeerGpuEndpoint`] — a second GPU plugged in as a peer worker: wave
//!   execution priced by its own [`fluidicl_hetsim::GpuModel`], results
//!   staged over its d2h link and shipped onward to the owner over its own
//!   upstream lanes (each peer gets its own full-duplex link pair and its
//!   own in-order channel, so peers never contend with the CPU's hd queue).

use fluidicl_des::SimDuration;
use fluidicl_hetsim::{
    AbortMode, CpuModel, GpuModel, HostModel, KernelProfile, LinkModel, MachineConfig, PeerGpu,
};

/// Cost surface of a non-owner device running the claim/compute/ship loop.
///
/// The co-execution engine drives every endpoint through the same state
/// machine; an implementation only answers "how long does this step take on
/// this device".
pub trait NonOwnerEndpoint {
    /// Smallest work-group count worth launching on this endpoint (the
    /// chunk controller's floor, and the profiling-trial allocation).
    fn min_chunk(&self) -> u64;

    /// Virtual time to compute `wgs` work-groups of `items` items each.
    fn compute_time(
        &self,
        profile: &KernelProfile,
        items: u64,
        wgs: u64,
        wg_split: bool,
    ) -> SimDuration;

    /// Time to stage `bytes` of freshly computed results into host memory
    /// for shipping (the paper's intermediate copy, §5.5).
    fn stage_time(&self, bytes: u64) -> SimDuration;

    /// Time to ship `bytes` from the staging area to the owner device over
    /// this endpoint's upstream link.
    fn ship_time(&self, bytes: u64) -> SimDuration;

    /// One-time startup delay before this endpoint's first subkernel can
    /// launch: broadcasting the kernel's buffers to the device plus its
    /// launch overhead. Zero for the CPU, which shares host memory.
    fn begin_delay(&self, launch_bytes: u64) -> SimDuration;

    /// Whether online-profiling trials (paper §6.6) run on this endpoint.
    /// Alternate kernel versions are CPU-oriented, so only the CPU answers
    /// true.
    fn supports_profiling(&self) -> bool;
}

/// The paper's CPU in the non-owner role.
pub struct CpuEndpoint {
    cpu: CpuModel,
    host: HostModel,
    h2d: LinkModel,
}

impl CpuEndpoint {
    /// The CPU endpoint of `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        CpuEndpoint {
            cpu: machine.cpu.clone(),
            host: machine.host.clone(),
            h2d: machine.h2d.clone(),
        }
    }
}

impl NonOwnerEndpoint for CpuEndpoint {
    fn min_chunk(&self) -> u64 {
        u64::from(self.cpu.threads())
    }

    fn compute_time(
        &self,
        profile: &KernelProfile,
        items: u64,
        wgs: u64,
        wg_split: bool,
    ) -> SimDuration {
        self.cpu.subkernel_time(profile, items, wgs, wg_split)
    }

    fn stage_time(&self, bytes: u64) -> SimDuration {
        self.host.copy_time(bytes)
    }

    fn ship_time(&self, bytes: u64) -> SimDuration {
        self.h2d.transfer_time(bytes)
    }

    fn begin_delay(&self, _launch_bytes: u64) -> SimDuration {
        SimDuration::ZERO
    }

    fn supports_profiling(&self) -> bool {
        true
    }
}

/// A peer GPU in the non-owner role: claims ranges like the CPU does, but
/// computes them as waves and moves data over its own link pair.
pub struct PeerGpuEndpoint {
    gpu: GpuModel,
    h2d: LinkModel,
    d2h: LinkModel,
}

impl PeerGpuEndpoint {
    /// The endpoint for one peer-GPU slot of a machine config.
    pub fn new(peer: &PeerGpu) -> Self {
        PeerGpuEndpoint {
            gpu: peer.gpu.clone(),
            h2d: peer.h2d.clone(),
            d2h: peer.d2h.clone(),
        }
    }
}

impl NonOwnerEndpoint for PeerGpuEndpoint {
    fn min_chunk(&self) -> u64 {
        self.gpu.wave_width()
    }

    fn compute_time(
        &self,
        profile: &KernelProfile,
        items: u64,
        wgs: u64,
        _wg_split: bool,
    ) -> SimDuration {
        // Every claimed range is one launch on the peer: launch overhead
        // plus the wave walk. The peer runs the untransformed kernel — no
        // abort checks; it never races anyone inside its claimed range.
        self.gpu.launch_overhead() + self.gpu.range_time(profile, items, wgs, AbortMode::None)
    }

    fn stage_time(&self, bytes: u64) -> SimDuration {
        // Results come off the peer device into host staging over its d2h.
        self.d2h.transfer_time(bytes)
    }

    fn ship_time(&self, bytes: u64) -> SimDuration {
        // Staged results move onward to the owner over the peer's own
        // upstream lanes; the owner's hd queue is never occupied.
        self.h2d.transfer_time(bytes)
    }

    fn begin_delay(&self, launch_bytes: u64) -> SimDuration {
        self.h2d.transfer_time(launch_bytes) + self.gpu.launch_overhead()
    }

    fn supports_profiling(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_endpoint_mirrors_the_machine_models() {
        let m = MachineConfig::paper_testbed();
        let ep = CpuEndpoint::new(&m);
        assert_eq!(ep.min_chunk(), u64::from(m.cpu.threads()));
        assert_eq!(ep.stage_time(4096), m.host.copy_time(4096));
        assert_eq!(ep.ship_time(4096), m.h2d.transfer_time(4096));
        assert_eq!(ep.begin_delay(1 << 20), SimDuration::ZERO);
        assert!(ep.supports_profiling());
    }

    #[test]
    fn peer_endpoint_pays_launch_and_broadcast_costs() {
        let m = MachineConfig::paper_testbed_3dev();
        let ep = PeerGpuEndpoint::new(&m.peers[0]);
        assert_eq!(ep.min_chunk(), m.peers[0].gpu.wave_width());
        assert!(ep.begin_delay(1 << 20) > m.peers[0].gpu.launch_overhead());
        assert!(!ep.supports_profiling());
        let profile = KernelProfile::new("probe");
        let small = ep.compute_time(&profile, 64, 8, false);
        let large = ep.compute_time(&profile, 64, 64, false);
        assert!(large >= small);
        assert!(small >= m.peers[0].gpu.launch_overhead());
    }
}
