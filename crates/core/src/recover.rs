//! Recovery policy: watchdog deadlines, bounded retry, backoff.
//!
//! The co-execution engine never waits unboundedly: every enqueued
//! operation (GPU wave, CPU subkernel, hd transfer) gets a watchdog
//! deadline derived from its *expected* duration, and every transient
//! transfer failure is retried a bounded number of times with exponential
//! backoff. The policy lives here so the coexec state machine reads like
//! the protocol and the tuning knobs read like configuration.

use fluidicl_des::SimDuration;

/// Watchdog and retry tuning for fault recovery.
///
/// # Examples
///
/// ```
/// use fluidicl::RecoveryPolicy;
/// use fluidicl_des::SimDuration;
///
/// let p = RecoveryPolicy::default();
/// let expected = SimDuration::from_nanos(500);
/// assert!(p.deadline(expected) >= expected, "deadlines trail the estimate");
/// assert!(p.backoff(2) > p.backoff(1), "backoff grows per attempt");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Watchdog deadline as a multiple of the operation's expected
    /// duration. Larger factors tolerate more model error before declaring
    /// an operation dead.
    pub watchdog_factor: f64,
    /// Floor for watchdog deadlines, so near-zero estimated durations still
    /// get a meaningful grace period.
    pub watchdog_min: SimDuration,
    /// Maximum retries for a transient transfer failure before it is
    /// reported as a [`fluidicl_vcl::ClError::Timeout`].
    pub max_transfer_retries: u32,
    /// Backoff before the first retry; doubles on each further attempt.
    pub backoff_base: SimDuration,
    /// Halve the next CPU chunk when a transfer retry occurs
    /// ([`crate::ChunkController::on_transfer_retry`]): smaller batches get
    /// acknowledged more often on a flaky link, so more CPU work is already
    /// mergeable if the watchdog later abandons it. On by default; only
    /// consulted when fault injection is active.
    pub shrink_chunk_on_retry: bool,
    /// Promote a surviving peer GPU to owner when the acting owner misses
    /// a wave watchdog (epoch-fenced failover), instead of degrading to
    /// survivor-finishes. On by default; only consulted when fault
    /// injection is active and at least one healthy peer exists.
    pub promote_on_owner_loss: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            watchdog_factor: 4.0,
            watchdog_min: SimDuration::from_nanos(1_000),
            max_transfer_retries: 3,
            backoff_base: SimDuration::from_nanos(2_000),
            shrink_chunk_on_retry: true,
            promote_on_owner_loss: true,
        }
    }
}

impl RecoveryPolicy {
    /// Sets the watchdog factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` (a deadline shorter than the estimate would
    /// declare healthy operations dead).
    pub fn with_watchdog_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "watchdog factor must be >= 1, got {factor}");
        self.watchdog_factor = factor;
        self
    }

    /// Sets the retry budget for transient transfer failures.
    pub fn with_max_transfer_retries(mut self, retries: u32) -> Self {
        self.max_transfer_retries = retries;
        self
    }

    /// Sets the backoff before the first retry (doubles per attempt).
    pub fn with_backoff_base(mut self, base: SimDuration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Enables or disables the fault-aware chunk shrink on transfer
    /// retries.
    pub fn with_shrink_chunk_on_retry(mut self, enabled: bool) -> Self {
        self.shrink_chunk_on_retry = enabled;
        self
    }

    /// Enables or disables owner failover (promotion of a surviving peer
    /// GPU after an owner loss).
    pub fn with_promote_on_owner_loss(mut self, enabled: bool) -> Self {
        self.promote_on_owner_loss = enabled;
        self
    }

    /// Watchdog deadline (a duration from the operation's start) for an
    /// operation expected to take `expected`.
    pub fn deadline(&self, expected: SimDuration) -> SimDuration {
        let scaled = SimDuration::from_nanos(
            (expected.as_nanos() as f64 * self.watchdog_factor).ceil() as u64,
        );
        scaled.max(self.watchdog_min)
    }

    /// Backoff to wait before retry number `attempt` (1-based): exponential
    /// in the attempt count.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let factor = 1u64 << (attempt.saturating_sub(1)).min(16);
        SimDuration::from_nanos(self.backoff_base.as_nanos().saturating_mul(factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_scales_and_floors() {
        let p = RecoveryPolicy::default();
        assert_eq!(
            p.deadline(SimDuration::from_nanos(10_000)),
            SimDuration::from_nanos(40_000)
        );
        // Tiny estimates get the floor.
        assert_eq!(p.deadline(SimDuration::ZERO), p.watchdog_min);
        assert_eq!(p.deadline(SimDuration::from_nanos(3)), p.watchdog_min);
    }

    #[test]
    fn backoff_is_exponential() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff(1), SimDuration::from_nanos(2_000));
        assert_eq!(p.backoff(2), SimDuration::from_nanos(4_000));
        assert_eq!(p.backoff(3), SimDuration::from_nanos(8_000));
    }

    #[test]
    fn builders_compose() {
        let p = RecoveryPolicy::default()
            .with_watchdog_factor(8.0)
            .with_max_transfer_retries(0)
            .with_shrink_chunk_on_retry(false)
            .with_promote_on_owner_loss(false);
        assert_eq!(p.watchdog_factor, 8.0);
        assert_eq!(p.max_transfer_retries, 0);
        assert!(!p.shrink_chunk_on_retry);
        assert!(!p.promote_on_owner_loss);
        assert!(
            RecoveryPolicy::default().shrink_chunk_on_retry,
            "fault-aware shrink is the default"
        );
        assert!(
            RecoveryPolicy::default().promote_on_owner_loss,
            "owner failover is the default"
        );
        assert_eq!(
            p.deadline(SimDuration::from_nanos(1_000)),
            SimDuration::from_nanos(8_000)
        );
    }

    #[test]
    #[should_panic(expected = "watchdog factor")]
    fn rejects_sub_unit_watchdog_factor() {
        let _ = RecoveryPolicy::default().with_watchdog_factor(0.5);
    }
}
