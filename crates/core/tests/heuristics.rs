//! Randomized property tests for the runtime's heuristics and bookkeeping:
//! the adaptive chunk controller (paper §5.1) and buffer version tracking
//! (paper §5.3) under arbitrary inputs, plus correctness under arbitrary
//! machine configurations (model fuzzing). Cases come from the in-tree
//! deterministic generator so failures replay bit-for-bit.

use fluidicl::{BufferTable, ChunkController, Fluidicl, FluidiclConfig};
use fluidicl_des::{SimDuration, SimTime, SplitMix64};
use fluidicl_hetsim::{CpuModel, GpuModel, HostModel, KernelProfile, LinkModel, MachineConfig};
use fluidicl_vcl::{
    ArgRole, ArgSpec, ClDriver, DeviceKind, KernelArg, KernelDef, NdRange, Program,
    SingleDeviceRuntime,
};

/// The chunk never leaves `[1, total]` and `next_chunk` never exceeds the
/// remaining work, whatever observations arrive.
#[test]
fn chunk_controller_stays_in_bounds() {
    let mut rng = SplitMix64::new(0xC051);
    for _ in 0..128 {
        let total = rng.range_u64(1, 100_000);
        let initial = rng.range_f64(0.1, 100.0);
        let step = rng.range_f64(0.0, 100.0);
        let min_chunk = rng.range_u64(1, 64);
        let mut c = ChunkController::new(total, initial, step, min_chunk, 0.02);
        for _ in 0..rng.range_usize(0, 50) {
            let wgs = rng.range_u64(1, 500);
            let ns = rng.range_u64(1, 1_000_000);
            assert!(c.chunk() >= 1 && c.chunk() <= total.max(min_chunk));
            let remaining = total.min(wgs * 3 + 1);
            let next = c.next_chunk(remaining);
            assert!(next >= 1);
            assert!(next <= remaining.max(1));
            c.observe(wgs, SimDuration::from_nanos(ns), SimDuration::ZERO);
        }
    }
}

/// Once growth stops it never restarts, so the chunk sequence is
/// non-decreasing and eventually constant.
#[test]
fn chunk_growth_is_monotone_then_flat() {
    let mut rng = SplitMix64::new(0xC052);
    for _ in 0..128 {
        let total = rng.range_u64(100, 10_000);
        let mut c = ChunkController::new(total, 2.0, 2.0, 8, 0.02);
        let mut sizes = vec![c.chunk()];
        let mut stopped_at: Option<usize> = None;
        let observations: Vec<(u64, u64)> = (0..rng.range_usize(1, 40))
            .map(|_| (rng.range_u64(1, 200), rng.range_u64(1, 1_000_000)))
            .collect();
        for (i, (wgs, ns)) in observations.iter().enumerate() {
            c.observe(*wgs, SimDuration::from_nanos(*ns), SimDuration::ZERO);
            sizes.push(c.chunk());
            if !c.is_growing() && stopped_at.is_none() {
                stopped_at = Some(i);
            }
        }
        assert!(
            sizes.windows(2).all(|w| w[0] <= w[1]),
            "chunk shrank: {sizes:?}"
        );
        if let Some(stop) = stopped_at {
            // After growth stops, the size is constant.
            let tail = &sizes[stop + 1..];
            assert!(tail.windows(2).all(|w| w[0] == w[1]));
        }
    }
}

/// Buffer versions: only the expected version satisfies staleness, and
/// late (superseded) arrivals are discarded.
#[test]
fn version_tracking_discards_stale() {
    let mut rng = SplitMix64::new(0xC053);
    for _ in 0..128 {
        let mut versions: Vec<u64> = (0..rng.range_usize(1, 20))
            .map(|_| rng.range_u64(1, 100))
            .collect();
        let mut t = BufferTable::new();
        let id = t.register(16, SimTime::ZERO);
        versions.sort_unstable();
        versions.dedup();
        let latest = *versions.last().expect("non-empty");
        for v in &versions {
            t.begin_kernel_write(id, *v);
        }
        // Arrivals of every superseded version leave the buffer stale.
        for v in &versions[..versions.len() - 1] {
            t.record_cpu_arrival(id, *v, SimTime::from_nanos(*v));
            assert!(t.state(id).cpu_is_stale());
        }
        t.record_cpu_arrival(id, latest, SimTime::from_nanos(latest));
        assert!(!t.state(id).cpu_is_stale());
    }
}

fn arb_machine(rng: &mut SplitMix64) -> MachineConfig {
    MachineConfig {
        cpu: CpuModel::xeon_w3550_like()
            .with_threads(rng.range_u64(1, 16) as u32)
            .with_launch_overhead(SimDuration::from_micros(rng.range_u64(1, 200))),
        gpu: GpuModel::tesla_c2070_like()
            .with_wave(rng.range_u64(1, 32) as u32, rng.range_u64(1, 10) as u32)
            .with_rates(rng.range_f64(2.0, 4000.0), rng.range_f64(5.0, 400.0)),
        h2d: LinkModel::new(
            SimDuration::from_micros(rng.range_u64(1, 200)),
            rng.range_f64(0.5, 20.0),
        ),
        d2h: LinkModel::new(
            SimDuration::from_micros(rng.range_u64(1, 200)),
            rng.range_f64(0.5, 20.0),
        ),
        host: HostModel::new(rng.range_f64(1.0, 32.0)),
        peers: Vec::new(),
    }
}

fn stencil_program() -> Program {
    let mut p = Program::new();
    p.register(KernelDef::new(
        "stencil",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
            ArgSpec::new("n", ArgRole::Scalar),
        ],
        KernelProfile::new("stencil")
            .flops_per_item(3.0)
            .bytes_read_per_item(12.0)
            .bytes_written_per_item(4.0)
            .gpu_coalescing(0.6)
            .cpu_cache_locality(0.8),
        |item, scalars, ins, outs| {
            let n = scalars.usize(0);
            let i = item.global_linear();
            let s = ins.get(0);
            let left = if i == 0 { 0.0 } else { s[i - 1] };
            let right = if i + 1 == n { 0.0 } else { s[i + 1] };
            outs.at(0)[i] = 0.25 * left + 0.5 * s[i] + 0.25 * right;
        },
    ));
    p
}

fn run_stencil(driver: &mut dyn ClDriver, n: usize) -> Vec<f32> {
    let src: Vec<f32> = (0..n).map(|i| ((i * 7919) % 101) as f32).collect();
    let a = driver.create_buffer(n);
    let b = driver.create_buffer(n);
    driver.write_buffer(a, &src).unwrap();
    driver
        .enqueue_kernel(
            "stencil",
            NdRange::d1(n, 16).unwrap(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::Usize(n),
            ],
        )
        .unwrap();
    driver.read_buffer(b).unwrap()
}

/// Machine-model fuzzing: whatever the (positive-rate) machine looks like,
/// FluidiCL computes exactly what a single device computes. The protocol's
/// correctness must not depend on the performance landscape.
#[test]
fn correct_on_arbitrary_machines() {
    let mut rng = SplitMix64::new(0xC054);
    for _ in 0..32 {
        let machine = arb_machine(&mut rng);
        let n = 512;
        let mut single =
            SingleDeviceRuntime::new(machine.clone(), DeviceKind::Cpu, stencil_program());
        let want = run_stencil(&mut single, n);
        let mut fcl = Fluidicl::new(machine, FluidiclConfig::default(), stencil_program());
        let got = run_stencil(&mut fcl, n);
        assert_eq!(got, want);
        assert!(!fcl.elapsed().is_zero());
    }
}
