//! Property tests for the runtime's heuristics and bookkeeping: the
//! adaptive chunk controller (paper §5.1) and buffer version tracking
//! (paper §5.3) under arbitrary inputs, plus correctness under arbitrary
//! machine configurations (model fuzzing).

use fluidicl::{BufferTable, ChunkController, Fluidicl, FluidiclConfig};
use fluidicl_des::{SimDuration, SimTime};
use fluidicl_hetsim::{CpuModel, GpuModel, HostModel, KernelProfile, LinkModel, MachineConfig};
use fluidicl_vcl::{
    ArgRole, ArgSpec, ClDriver, DeviceKind, KernelArg, KernelDef, NdRange, Program,
    SingleDeviceRuntime,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The chunk never leaves `[1, total]` and `next_chunk` never exceeds
    /// the remaining work, whatever observations arrive.
    #[test]
    fn chunk_controller_stays_in_bounds(
        total in 1u64..100_000,
        initial in 0.1f64..100.0,
        step in 0.0f64..100.0,
        min_chunk in 1u64..64,
        observations in proptest::collection::vec((1u64..500, 1u64..1_000_000), 0..50),
    ) {
        let mut c = ChunkController::new(total, initial, step, min_chunk, 0.02);
        for (wgs, ns) in observations {
            prop_assert!(c.chunk() >= 1 && c.chunk() <= total.max(min_chunk));
            let remaining = total.min(wgs * 3 + 1);
            let next = c.next_chunk(remaining);
            prop_assert!(next >= 1);
            prop_assert!(next <= remaining.max(1));
            c.observe(wgs, SimDuration::from_nanos(ns));
        }
    }

    /// Once growth stops it never restarts, so the chunk sequence is
    /// non-decreasing and eventually constant.
    #[test]
    fn chunk_growth_is_monotone_then_flat(
        total in 100u64..10_000,
        observations in proptest::collection::vec((1u64..200, 1u64..1_000_000), 1..40),
    ) {
        let mut c = ChunkController::new(total, 2.0, 2.0, 8, 0.02);
        let mut sizes = vec![c.chunk()];
        let mut stopped_at: Option<usize> = None;
        for (i, (wgs, ns)) in observations.iter().enumerate() {
            c.observe(*wgs, SimDuration::from_nanos(*ns));
            sizes.push(c.chunk());
            if !c.is_growing() && stopped_at.is_none() {
                stopped_at = Some(i);
            }
        }
        prop_assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "chunk shrank: {sizes:?}");
        if let Some(stop) = stopped_at {
            // After growth stops, the size is constant.
            let tail = &sizes[stop + 1..];
            prop_assert!(tail.windows(2).all(|w| w[0] == w[1]));
        }
    }

    /// Buffer versions: only the expected version satisfies staleness, and
    /// late (superseded) arrivals are discarded.
    #[test]
    fn version_tracking_discards_stale(
        versions in proptest::collection::vec(1u64..100, 1..20),
    ) {
        let mut t = BufferTable::new();
        let id = t.register(16, SimTime::ZERO);
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let latest = *sorted.last().expect("non-empty");
        for v in &sorted {
            t.begin_kernel_write(id, *v);
        }
        // Arrivals of every superseded version leave the buffer stale.
        for v in &sorted[..sorted.len() - 1] {
            t.record_cpu_arrival(id, *v, SimTime::from_nanos(*v));
            prop_assert!(t.state(id).cpu_is_stale());
        }
        t.record_cpu_arrival(id, latest, SimTime::from_nanos(latest));
        prop_assert!(!t.state(id).cpu_is_stale());
    }
}

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    (
        2.0f64..4000.0,   // gpu flops/ns
        5.0f64..400.0,    // gpu mem bytes/ns
        1u32..32,         // sms
        1u32..10,         // wgs per sm
        0.5f64..20.0,     // link bandwidth
        1u64..200,        // link latency us
        1u32..16,         // cpu threads
        1u64..200,        // cpu launch overhead us
        1.0f64..32.0,     // host memcpy bytes/ns
    )
        .prop_map(
            |(gflops, gbw, sms, wps, lbw, llat, threads, launch, hbw)| MachineConfig {
                cpu: CpuModel::xeon_w3550_like()
                    .with_threads(threads)
                    .with_launch_overhead(SimDuration::from_micros(launch)),
                gpu: GpuModel::tesla_c2070_like()
                    .with_wave(sms, wps)
                    .with_rates(gflops, gbw),
                h2d: LinkModel::new(SimDuration::from_micros(llat), lbw),
                d2h: LinkModel::new(SimDuration::from_micros(llat), lbw),
                host: HostModel::new(hbw),
            },
        )
}

fn stencil_program() -> Program {
    let mut p = Program::new();
    p.register(KernelDef::new(
        "stencil",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
            ArgSpec::new("n", ArgRole::Scalar),
        ],
        KernelProfile::new("stencil")
            .flops_per_item(3.0)
            .bytes_read_per_item(12.0)
            .bytes_written_per_item(4.0)
            .gpu_coalescing(0.6)
            .cpu_cache_locality(0.8),
        |item, scalars, ins, outs| {
            let n = scalars.usize(0);
            let i = item.global_linear();
            let s = ins.get(0);
            let left = if i == 0 { 0.0 } else { s[i - 1] };
            let right = if i + 1 == n { 0.0 } else { s[i + 1] };
            outs.at(0)[i] = 0.25 * left + 0.5 * s[i] + 0.25 * right;
        },
    ));
    p
}

fn run_stencil(driver: &mut dyn ClDriver, n: usize) -> Vec<f32> {
    let src: Vec<f32> = (0..n).map(|i| ((i * 7919) % 101) as f32).collect();
    let a = driver.create_buffer(n);
    let b = driver.create_buffer(n);
    driver.write_buffer(a, &src).unwrap();
    driver
        .enqueue_kernel(
            "stencil",
            NdRange::d1(n, 16).unwrap(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::Usize(n),
            ],
        )
        .unwrap();
    driver.read_buffer(b).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Machine-model fuzzing: whatever the (positive-rate) machine looks
    /// like, FluidiCL computes exactly what a single device computes. The
    /// protocol's correctness must not depend on the performance landscape.
    #[test]
    fn correct_on_arbitrary_machines(machine in arb_machine()) {
        let n = 512;
        let mut single = SingleDeviceRuntime::new(
            machine.clone(),
            DeviceKind::Cpu,
            stencil_program(),
        );
        let want = run_stencil(&mut single, n);
        let mut fcl = Fluidicl::new(machine, FluidiclConfig::default(), stencil_program());
        let got = run_stencil(&mut fcl, n);
        prop_assert_eq!(got, want);
        prop_assert!(!fcl.elapsed().is_zero());
    }
}
