//! Footprint validation sweep: every Polybench kernel's declared
//! [`AccessPattern`](fluidicl_vcl::AccessPattern)s against the
//! sanitizer's shadow write-maps.
//!
//! For every launch of every benchmark (at the sweep sizes), the declared
//! symbolic write footprint of each work-group range must **equal or
//! conservatively contain** the elements the kernel body actually wrote
//! ([`execute_groups_shadowed`] is the ground truth). A subset would let
//! the race detector under-approximate what a subkernel shipped — the
//! one direction that is unsound — so it fails the test; slack (declared
//! but unwritten elements) is sound and reported per kernel.

use fluidicl_check::{sweep_size, SWEEP_SEED};
use fluidicl_des::SimDuration;
use fluidicl_polybench::all_benchmarks;
use fluidicl_vcl::exec::execute_all;
use fluidicl_vcl::{
    execute_groups_shadowed, BufferId, ClDriver, ClResult, DirtyRanges, KernelArg, Launch, Memory,
    NdRange,
};

/// A [`ClDriver`] that, on every enqueue, checks the kernel's declared
/// write footprints against shadow-executed ground truth — whole-launch
/// and per-quarter work-group ranges (the race detector consumes
/// arbitrary `[from, to)` slices, so the parametrization must hold below
/// whole-launch granularity too).
struct FootprintDriver {
    program: fluidicl_vcl::Program,
    mem: Memory,
    next_id: u64,
    violations: Vec<String>,
    slack: Vec<String>,
    checked_kernels: Vec<String>,
}

impl FootprintDriver {
    fn new(program: fluidicl_vcl::Program) -> Self {
        FootprintDriver {
            program,
            mem: Memory::new(),
            next_id: 0,
            violations: Vec::new(),
            slack: Vec::new(),
            checked_kernels: Vec::new(),
        }
    }

    fn check_launch(&mut self, kernel: &str, launch: &Launch) -> ClResult<()> {
        let total = launch.ndrange.num_groups();
        let (_ins, outs, scalars) = launch.kernel.classify_args(&launch.args)?;
        let out_lens: Vec<usize> = outs
            .iter()
            .map(|id| self.mem.get(*id).map(<[f32]>::len))
            .collect::<ClResult<_>>()?;
        assert!(
            launch.kernel.has_write_footprints(),
            "kernel `{kernel}` must declare an AccessPattern on every output argument"
        );
        // Whole launch plus four quarters: the race detector slices
        // footprints at subkernel boundaries, not just 0..total.
        let quarter = (total / 4).max(1);
        let mut ranges = vec![(0, total)];
        let mut lo = 0;
        while lo < total {
            let hi = (lo + quarter).min(total);
            ranges.push((lo, hi));
            lo = hi;
        }
        for (from, to) in ranges {
            let declared = launch
                .kernel
                .write_footprints(&launch.ndrange, &scalars, &out_lens, from, to)
                .expect("has_write_footprints checked above");
            let mut m = self.mem.clone();
            let rec = execute_groups_shadowed(launch, &mut m, from, to)?;
            for (k, decl) in declared.iter().enumerate() {
                let observed =
                    DirtyRanges::from_ranges(rec.total_writes(k).keys().map(|&i| (i, i + 1)));
                let inside = observed.intersect(decl);
                if inside.element_count() != observed.element_count() {
                    self.violations.push(format!(
                        "kernel `{kernel}` out arg {k}, groups {from}..{to}: kernel wrote \
                         {} element(s) outside its declared footprint",
                        observed.element_count() - inside.element_count()
                    ));
                }
                let slack = decl.element_count() - inside.element_count();
                if slack > 0 && (from, to) == (0, total) {
                    self.slack.push(format!(
                        "kernel `{kernel}` out arg {k}: declared footprint exceeds observed \
                         writes by {slack} element(s) (conservative, sound)"
                    ));
                }
            }
        }
        self.checked_kernels.push(kernel.to_string());
        Ok(())
    }
}

impl ClDriver for FootprintDriver {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.mem.alloc(id, len);
        id
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        self.mem.write(id, data)
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let launch = Launch::new(def, ndrange, args.to_vec());
        self.check_launch(kernel, &launch)?;
        execute_all(&launch, &mut self.mem)
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        self.mem.get(id).map(<[f32]>::to_vec)
    }

    fn elapsed(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        Vec::new()
    }
}

#[test]
fn declared_footprints_contain_shadow_write_maps() {
    let mut kernels_checked = 0usize;
    for b in all_benchmarks() {
        let n = sweep_size(b.name);
        let mut driver = FootprintDriver::new((b.program)(n));
        let ok = b
            .run_and_validate_sized(&mut driver, n, SWEEP_SEED)
            .expect("benchmark runs");
        assert!(ok, "{}: output mismatch", b.name);
        assert!(
            driver.violations.is_empty(),
            "{}: declared footprints under-approximate real writes:\n{}",
            b.name,
            driver.violations.join("\n")
        );
        for line in &driver.slack {
            println!("{}: {line}", b.name);
        }
        kernels_checked += driver.checked_kernels.len();
    }
    // 15 registered kernels across the suite, all launched at least once.
    assert!(
        kernels_checked >= 15,
        "expected every kernel checked, saw {kernels_checked} launches"
    );
}
