//! End-to-end evidence for the intra-launch parallel executor: every
//! benchmark of the suite — all of whose kernels the PR-1 sanitizer found
//! to have disjoint per-group writes — must produce bit-identical outputs
//! whether FluidiCL splits work-group ranges across one thread or four.

use fluidicl::{Fluidicl, FluidiclConfig};
use fluidicl_check::SWEEP_SEED;
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::{all_benchmarks, outputs_match};

#[test]
fn intra_launch_parallelism_is_bit_exact_on_every_benchmark() {
    let machine = MachineConfig::paper_testbed();
    for b in all_benchmarks() {
        let n = fluidicl_check::sweep_size(b.name);
        let run = |jobs: usize| {
            let config = FluidiclConfig::default().with_intra_launch_jobs(jobs);
            let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
            (b.run)(&mut rt, n, SWEEP_SEED).expect("run failed")
        };
        let seq = run(1);
        let par = run(4);
        assert!(
            outputs_match(&seq, &par),
            "{}: parallel intra-launch execution diverged from sequential",
            b.name
        );
        let want = (b.reference)(n, SWEEP_SEED);
        assert!(
            outputs_match(&par, &want),
            "{}: parallel execution diverged from the reference",
            b.name
        );
    }
}
