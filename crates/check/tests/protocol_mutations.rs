//! Mutation harness for the protocol-trace linter: take genuine traces from
//! co-executed Polybench kernels, verify they lint clean, then inject
//! protocol bugs and verify every one is flagged.

use fluidicl::{Finisher, Fluidicl, FluidiclConfig, KernelReport, TraceEvent, TraceKind};
use fluidicl_check::{lint_report, lint_trace, sweep_size, LintSeverity, SWEEP_SEED};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::all_benchmarks;

/// Runs a few benchmarks under FluidiCL and returns every kernel report.
/// The weak-GPU laptop makes the CPU competitive, so SYRK there yields
/// traces with several waves *and* several arrived statuses.
fn real_reports() -> Vec<KernelReport> {
    let mut reports = Vec::new();
    for (machine, names) in [
        (MachineConfig::paper_testbed(), ["ATAX", "CORR"].as_slice()),
        (
            MachineConfig::weak_gpu_laptop(),
            ["SYRK", "GEMM"].as_slice(),
        ),
    ] {
        for b in all_benchmarks()
            .into_iter()
            .filter(|b| names.contains(&b.name))
        {
            let n = sweep_size(b.name);
            let mut rt = Fluidicl::new(machine.clone(), FluidiclConfig::default(), (b.program)(n));
            let ok = b.run_and_validate_sized(&mut rt, n, SWEEP_SEED).unwrap();
            assert!(ok, "{} diverged from reference", b.name);
            reports.extend(rt.reports().iter().cloned());
        }
    }
    assert!(!reports.is_empty());
    reports
}

/// A real trace rich enough for every mutation: it has arrived statuses and
/// at least two GPU waves.
fn rich_trace(reports: &[KernelReport]) -> Vec<TraceEvent> {
    reports
        .iter()
        .map(|r| &r.trace)
        .find(|t| {
            let statuses = t
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::StatusArrived { .. }))
                .count();
            let waves = t
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::GpuWaveDone { .. }))
                .count();
            statuses >= 1 && waves >= 2
        })
        .expect("some kernel produced statuses and multiple waves")
        .clone()
}

fn errors(trace: &[TraceEvent]) -> Vec<String> {
    lint_trace(trace)
        .into_iter()
        .filter(|d| d.severity == LintSeverity::Error)
        .map(|d| d.rule.to_string())
        .collect()
}

#[test]
fn real_traces_lint_clean() {
    for r in &real_reports() {
        let diags = lint_report(r);
        assert!(
            diags.is_empty(),
            "kernel `{}` trace should be clean, got {diags:?}",
            r.kernel
        );
    }
}

#[test]
fn mutation_missing_enqueue_record() {
    let t = rich_trace(&real_reports());
    let rules = errors(&t[1..]);
    assert!(rules.contains(&"trace-shape".to_string()), "{rules:?}");
}

#[test]
fn mutation_rising_watermark() {
    let reports = real_reports();
    let mut t = rich_trace(&reports);
    let total = match t[0].kind {
        TraceKind::Enqueued { total_wgs, .. } => total_wgs,
        _ => unreachable!(),
    };
    // Make the last status claim a boundary above the whole NDRange: the
    // watermark would have to rise.
    let last_status = t
        .iter_mut()
        .rev()
        .find(|e| matches!(e.kind, TraceKind::StatusArrived { .. }))
        .unwrap();
    last_status.kind = TraceKind::StatusArrived {
        boundary: total + 1,
    };
    let rules = errors(&t);
    assert!(
        rules.contains(&"watermark-monotone".to_string()),
        "{rules:?}"
    );
}

#[test]
fn mutation_status_without_data() {
    let reports = real_reports();
    let mut t = rich_trace(&reports);
    // Drop every data transfer: the in-order queue now delivers statuses
    // whose payload was never sent.
    t.retain(|e| !matches!(e.kind, TraceKind::HdEnqueued { .. }));
    let rules = errors(&t);
    assert!(
        rules.contains(&"data-before-status".to_string()),
        "{rules:?}"
    );
}

#[test]
fn mutation_dropped_wave() {
    let reports = real_reports();
    let mut t = rich_trace(&reports);
    // Remove the first wave's start/done pair: the next wave no longer
    // starts at the expected work-group.
    let mut dropped_start = false;
    let mut dropped_done = false;
    t.retain(|e| match e.kind {
        TraceKind::GpuWaveStart { .. } if !dropped_start => {
            dropped_start = true;
            false
        }
        TraceKind::GpuWaveDone { .. } if !dropped_done => {
            dropped_done = true;
            false
        }
        _ => true,
    });
    let rules = errors(&t);
    assert!(rules.contains(&"wave-contiguity".to_string()), "{rules:?}");
}

#[test]
fn mutation_missing_gpu_exit() {
    let reports = real_reports();
    let mut t = rich_trace(&reports);
    t.retain(|e| !matches!(e.kind, TraceKind::GpuExit));
    let rules = errors(&t);
    assert!(rules.contains(&"gpu-exit".to_string()), "{rules:?}");
}

#[test]
fn mutation_missing_merge() {
    let reports = real_reports();
    let mut t = rich_trace(&reports);
    t.retain(|e| !matches!(e.kind, TraceKind::MergeDone));
    let rules = errors(&t);
    assert!(rules.contains(&"merge".to_string()), "{rules:?}");
}

#[test]
fn mutation_duplicated_completion() {
    let reports = real_reports();
    let mut t = rich_trace(&reports);
    let last = t.last().unwrap().clone();
    t.push(TraceEvent {
        at: last.at,
        kind: TraceKind::KernelComplete {
            finisher: Finisher::Gpu,
        },
    });
    let rules = errors(&t);
    assert!(rules.contains(&"completion".to_string()), "{rules:?}");
}

#[test]
fn mutation_broken_subkernel_descent() {
    let reports = real_reports();
    let mut t = rich_trace(&reports);
    // Shift the first subkernel's range up by one: it no longer starts the
    // descent at the top of the NDRange.
    let first = t
        .iter_mut()
        .find(|e| matches!(e.kind, TraceKind::CpuSubkernelStart { .. }))
        .unwrap();
    if let TraceKind::CpuSubkernelStart { from, to, version } = first.kind.clone() {
        first.kind = TraceKind::CpuSubkernelStart {
            from: from + 1,
            to: to + 1,
            version,
        };
    }
    let rules = errors(&t);
    assert!(rules.contains(&"cpu-contiguity".to_string()), "{rules:?}");
}

#[test]
fn mutation_unsorted_timestamps() {
    let reports = real_reports();
    let mut t = rich_trace(&reports);
    // Move the GPU launch to the very end of the log.
    let pos = t
        .iter()
        .position(|e| matches!(e.kind, TraceKind::GpuLaunch))
        .unwrap();
    let ev = t.remove(pos);
    t.push(ev);
    let rules = errors(&t);
    assert!(rules.contains(&"chronology".to_string()), "{rules:?}");
}

#[test]
fn mutation_inconsistent_report_counters() {
    let reports = real_reports();
    let mut r = reports
        .iter()
        .find(|r| r.gpu_executed_wgs > 0)
        .unwrap()
        .clone();
    r.gpu_executed_wgs += 1;
    let diags = lint_report(&r);
    assert!(
        diags.iter().any(|d| d.rule == "report-consistency"),
        "{diags:?}"
    );
}

#[test]
fn runtime_rejects_protocol_violations_when_enabled() {
    // The config flag is what wires the linter into the runtime; with it on
    // (the debug/test default) every report returned to callers has already
    // been vetted, so its trace lints clean here.
    let machine = MachineConfig::paper_testbed();
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "SYRK")
        .unwrap();
    let n = sweep_size(b.name);
    let config = FluidiclConfig::default().with_validate_protocol(true);
    let mut rt = Fluidicl::new(machine, config, (b.program)(n));
    assert!(b.run_and_validate_sized(&mut rt, n, SWEEP_SEED).unwrap());
    assert!(rt.config().validate_protocol);
    for r in rt.reports() {
        assert!(lint_report(r).is_empty());
    }
}
