//! Integration tests for N-way co-execution: output correctness and trace
//! hygiene on the three-device machine, byte-identity of the degenerate
//! two-device configuration, the N=3-beats-N=2 virtual-time claim, and the
//! `cpu_version_used` propagation on degraded runs.

use fluidicl::{render_timeline, Finisher, Fluidicl, FluidiclConfig, KernelReport, TraceKind};
use fluidicl_check::{race_check_report, sweep_size, SWEEP_SEED};
use fluidicl_hetsim::{KernelProfile, MachineConfig};
use fluidicl_polybench::all_benchmarks;
use fluidicl_vcl::{
    ArgRole, ArgSpec, ClDriver, FaultKind, FaultPlan, KernelArg, KernelDef, NdRange, Program,
};

/// Whether a report's trace uses the multi-device (Ep*) vocabulary.
fn is_multi(report: &KernelReport) -> bool {
    report.trace.iter().any(|e| {
        matches!(
            e.kind,
            TraceKind::EpSubkernelStart { .. }
                | TraceKind::EpSubkernelDone { .. }
                | TraceKind::EpSend { .. }
                | TraceKind::EpStatus { .. }
                | TraceKind::NonOwnerLost { .. }
        )
    })
}

/// Every Polybench benchmark on the three-device machine must match its
/// sequential reference, emit multi-device traces, and pass the
/// happens-before race check on every kernel.
#[test]
fn three_device_coexecution_matches_references() {
    let machine = MachineConfig::paper_testbed_3dev();
    let mut peer_wgs_total = 0u64;
    for b in all_benchmarks() {
        let n = sweep_size(b.name);
        let config = FluidiclConfig::default().with_validate_protocol(true);
        let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
        let defs = (b.program)(n);
        let ok = b.run_and_validate_sized(&mut rt, n, SWEEP_SEED).unwrap();
        assert!(ok, "{}: 3-device run diverged from reference", b.name);
        for report in rt.reports() {
            assert!(
                is_multi(report),
                "{} kernel `{}`: expected multi-device trace vocabulary",
                b.name,
                report.kernel
            );
            peer_wgs_total += report.peer_executed_wgs.iter().sum::<u64>();
            let kdef = defs.kernel(&report.kernel).unwrap();
            let findings = race_check_report(&kdef, report);
            assert!(
                findings.is_empty(),
                "{} kernel `{}`: {findings:?}",
                b.name,
                report.kernel
            );
        }
    }
    assert!(
        peer_wgs_total > 0,
        "the peer GPU never executed a single work-group across the suite"
    );
}

/// `with_devices(2)` on the three-device machine must degenerate to the
/// paper's two-device protocol exactly: every kernel's rendered timeline is
/// byte-identical to a run on the plain paper testbed.
#[test]
fn two_device_cap_reproduces_paper_testbed_traces() {
    for b in all_benchmarks() {
        let n = sweep_size(b.name);
        let mut two = Fluidicl::new(
            MachineConfig::paper_testbed(),
            FluidiclConfig::default().with_validate_protocol(true),
            (b.program)(n),
        );
        assert!(b.run_and_validate_sized(&mut two, n, SWEEP_SEED).unwrap());
        let mut capped = Fluidicl::new(
            MachineConfig::paper_testbed_3dev(),
            FluidiclConfig::default()
                .with_validate_protocol(true)
                .with_devices(2),
            (b.program)(n),
        );
        assert!(b
            .run_and_validate_sized(&mut capped, n, SWEEP_SEED)
            .unwrap());
        assert_eq!(two.reports().len(), capped.reports().len());
        for (a, c) in two.reports().iter().zip(capped.reports()) {
            assert!(!is_multi(c), "capped run must use the legacy vocabulary");
            assert_eq!(
                render_timeline(&a.kernel, &a.trace),
                render_timeline(&c.kernel, &c.trace),
                "{} kernel `{}`: devices=2 trace differs from paper testbed",
                b.name,
                a.kernel
            );
            assert_eq!(a.duration, c.duration);
            assert!(c.peer_executed_wgs.is_empty());
        }
    }
}

/// The scaling claim behind the tentpole: with the mid-range peer GPU
/// enabled, total virtual time must beat the two-device configuration on at
/// least 3 Polybench benchmarks. Measured at 2x the sweep sizes — the peer
/// pays an up-front begin broadcast over its slower link, so the win only
/// materialises once kernels are large enough to amortise it (the paper's
/// scaling argument, §7). The regression bound is deliberately loose:
/// memory-bound kernels (GESUMMV, MVT) pay a watermark-gating tax when the
/// slow peer claims a range mid-descent and delays the contiguous covered
/// suffix; the adaptive chunker bounds that tax but cannot eliminate it
/// under the paper's single-watermark in-loop abort.
#[test]
fn three_devices_beat_two_on_virtual_time() {
    let mut faster = Vec::new();
    let mut slower = Vec::new();
    for b in all_benchmarks() {
        let n = 2 * sweep_size(b.name);
        let run = |machine: MachineConfig| {
            let mut rt = Fluidicl::new(machine, FluidiclConfig::default(), (b.program)(n));
            assert!(
                b.run_and_validate_sized(&mut rt, n, SWEEP_SEED).unwrap(),
                "{}: diverged from reference",
                b.name
            );
            rt.summary().total_kernel_time
        };
        let two = run(MachineConfig::paper_testbed());
        let three = run(MachineConfig::paper_testbed_3dev());
        if three < two {
            faster.push((b.name, two, three));
        } else if three.as_nanos() as f64 > two.as_nanos() as f64 * 1.15 {
            slower.push((b.name, two, three));
        }
    }
    assert!(
        faster.len() >= 3,
        "3 devices beat 2 on only {} benchmark(s): {faster:?}",
        faster.len()
    );
    assert!(slower.is_empty(), "3 devices regressed >15% on: {slower:?}");
}

/// A two-version program: the baseline is deliberately CPU-hostile and the
/// alternate CPU-friendly, so online profiling (paper §6.6) must settle on
/// version 1.
fn two_version_program() -> Program {
    let body = |item: &fluidicl_vcl::WorkItem,
                scalars: &fluidicl_vcl::Scalars,
                ins: &fluidicl_vcl::Inputs<'_>,
                outs: &mut fluidicl_vcl::Outputs<'_>| {
        let n = scalars.usize(0);
        let i = item.global_linear();
        if i < n {
            outs.at(0)[i] = ins.get(0)[i] * 2.0 + 1.0;
        }
    };
    let mut p = Program::new();
    p.register(
        KernelDef::new(
            "scale",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
                ArgSpec::new("n", ArgRole::Scalar),
            ],
            KernelProfile::new("scale")
                .flops_per_item(40.0)
                .bytes_read_per_item(8.0)
                .bytes_written_per_item(4.0)
                .cpu_cache_locality(0.05),
            body,
        )
        .with_version(
            "cpu-tuned",
            KernelProfile::new("scale-cpu")
                .flops_per_item(2.0)
                .bytes_read_per_item(8.0)
                .bytes_written_per_item(4.0)
                .cpu_cache_locality(0.95),
            body,
        ),
    );
    p
}

/// Satellite regression: a degraded (GPU-lost) kernel must report the
/// kernel version online profiling selected, not a hardcoded 0.
#[test]
fn degraded_runs_report_the_selected_version() {
    // Seeds sweep until one kills the GPU *after* profiling has settled on
    // the alternate version but *before* the last launch, leaving at least
    // one degraded launch in the report list. The schedule is deterministic
    // per seed, so the first qualifying seed is stable.
    let n = 4096usize;
    'seeds: for seed in 0..64u64 {
        let config = FluidiclConfig::default()
            .with_online_profiling(true)
            .with_faults(Some(FaultPlan::new(FaultKind::GpuLost, seed)));
        let mut rt = Fluidicl::new(
            MachineConfig::paper_testbed(),
            config,
            two_version_program(),
        );
        let src: Vec<f32> = (0..n).map(|i| (i % 97) as f32).collect();
        let a = rt.create_buffer(n);
        let b = rt.create_buffer(n);
        rt.write_buffer(a, &src).unwrap();
        for _ in 0..6 {
            let r = rt.enqueue_kernel(
                "scale",
                NdRange::d1(n, 64).unwrap(),
                &[
                    KernelArg::Buffer(a),
                    KernelArg::Buffer(b),
                    KernelArg::Usize(n),
                ],
            );
            if r.is_err() {
                continue 'seeds;
            }
        }
        let out = rt.read_buffer(b).unwrap();
        assert_eq!(out, src.iter().map(|v| v * 2.0 + 1.0).collect::<Vec<f32>>());
        let reports = rt.reports();
        let Some(first_degraded) = reports.iter().position(|r| {
            r.trace
                .iter()
                .any(|e| matches!(e.kind, TraceKind::DegradedRun { .. }))
        }) else {
            continue 'seeds;
        };
        // Profiling must have settled on the alternate before the loss.
        if reports[..first_degraded]
            .iter()
            .all(|r| r.cpu_version_used != 1)
        {
            continue 'seeds;
        }
        for r in &reports[first_degraded..] {
            assert_eq!(
                r.cpu_version_used, 1,
                "degraded kernel `{}` (id {}) dropped the selected version",
                r.kernel, r.kernel_id
            );
            assert_eq!(r.finished_by, Finisher::Cpu);
        }
        return; // found a qualifying seed and the contract held
    }
    panic!("no seed produced a degraded run after version selection");
}
