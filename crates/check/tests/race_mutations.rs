//! Mutation harness for the happens-before race detector.
//!
//! Runs real benchmarks under FluidiCL, takes their (race-free) kernel
//! reports, and applies targeted trace mutations that each reintroduce a
//! protocol race the implementation is designed to exclude. The detector
//! must flag **every** mutation with the expected rule, and must stay
//! silent on every unmutated benchmark across the whole runtime
//! configuration matrix — together those pin both the detector's recall
//! and its false-positive rate.

use std::sync::Arc;

use fluidicl::{Fluidicl, FluidiclConfig, KernelReport, TraceKind};
use fluidicl_check::{race_check_report, sweep_size, SWEEP_SEED};
use fluidicl_hetsim::{AbortMode, MachineConfig};
use fluidicl_polybench::all_benchmarks;
use fluidicl_vcl::KernelDef;

/// Every benchmark × every runtime config must produce race-free traces:
/// the detector's false-positive contract over the real protocol.
#[test]
fn all_benchmarks_race_free_across_configs() {
    let configs = [
        ("default", FluidiclConfig::default()),
        (
            "abort=wg-start",
            FluidiclConfig::default().with_abort_mode(AbortMode::WorkGroupStart),
        ),
        (
            "abort=in-loop",
            FluidiclConfig::default().with_abort_mode(AbortMode::InLoop),
        ),
        (
            "no-opts",
            FluidiclConfig::default()
                .with_wg_split(false)
                .with_buffer_pool(false)
                .with_location_tracking(false),
        ),
        (
            "whole-buffer",
            FluidiclConfig::default().with_whole_buffer_transfers(),
        ),
        (
            "pipeline=1",
            FluidiclConfig::default().with_pipeline_depth(1),
        ),
        (
            "pipeline=4",
            FluidiclConfig::default().with_pipeline_depth(4),
        ),
    ];
    let mut checked = 0usize;
    for b in all_benchmarks() {
        let n = sweep_size(b.name);
        for (cname, config) in &configs {
            let config = config.clone().with_validate_protocol(true);
            let mut rt = Fluidicl::new(MachineConfig::paper_testbed(), config, (b.program)(n));
            let ok = b
                .run_and_validate_sized(&mut rt, n, SWEEP_SEED)
                .expect("benchmark runs");
            assert!(ok, "{}/{cname}: output mismatch", b.name);
            let defs = (b.program)(n);
            for report in rt.reports() {
                let kdef = defs.kernel(&report.kernel).expect("kernel registered");
                let diags = race_check_report(&kdef, report);
                assert!(
                    diags.is_empty(),
                    "{}/{cname} kernel `{}`: unexpected race findings {diags:?}",
                    b.name,
                    report.kernel
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 9 * 7, "expected full matrix, checked {checked}");
}

/// Finds a cooperative report rich enough to mutate: at least two CPU
/// subkernel completions, two status acks, a merge, and a non-zero final
/// watermark. Pipeline depth 1 ships every subkernel individually, so
/// acks and sends pair one-to-one — the richest trace shape to mutate.
fn cooperative_base() -> (Arc<KernelDef>, KernelReport) {
    let mut seen = Vec::new();
    for (machine, b) in [
        MachineConfig::weak_gpu_laptop(),
        MachineConfig::paper_testbed(),
    ]
    .iter()
    .flat_map(|m| all_benchmarks().into_iter().map(move |b| (m.clone(), b)))
    {
        let n = sweep_size(b.name);
        let config = FluidiclConfig::default()
            .with_validate_protocol(true)
            .with_pipeline_depth(1);
        let mut rt = Fluidicl::new(machine, config, (b.program)(n));
        let ok = b
            .run_and_validate_sized(&mut rt, n, SWEEP_SEED)
            .expect("benchmark runs");
        assert!(ok, "{}: output mismatch", b.name);
        let defs = (b.program)(n);
        for report in rt.reports() {
            let subs = count(&report.trace, |k| {
                matches!(k, TraceKind::CpuSubkernelDone { .. })
            });
            let acks = count(&report.trace, |k| {
                matches!(k, TraceKind::StatusArrived { .. })
            });
            let merges = count(&report.trace, |k| matches!(k, TraceKind::MergeDone));
            let wm = report
                .trace
                .iter()
                .filter_map(|e| match e.kind {
                    TraceKind::StatusArrived { boundary } => Some(boundary),
                    _ => None,
                })
                .min();
            if subs >= 2 && acks >= 2 && merges == 1 && wm.is_some_and(|w| w > 0) {
                let kdef = defs.kernel(&report.kernel).expect("kernel registered");
                return (kdef, report.clone());
            }
            seen.push(format!(
                "{}/{}: subs={subs} acks={acks} merges={merges} wm={wm:?}",
                b.name, report.kernel
            ));
        }
    }
    panic!(
        "no benchmark produced a cooperative trace rich enough to mutate:\n{}",
        seen.join("\n")
    );
}

fn count(trace: &[fluidicl::TraceEvent], pred: impl Fn(&TraceKind) -> bool) -> usize {
    trace.iter().filter(|e| pred(&e.kind)).count()
}

fn final_watermark(report: &KernelReport) -> u64 {
    report
        .trace
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::StatusArrived { boundary } => Some(boundary),
            _ => None,
        })
        .min()
        .expect("cooperative trace has status acks")
}

fn position(trace: &[fluidicl::TraceEvent], pred: impl Fn(&TraceKind) -> bool) -> Option<usize> {
    trace.iter().position(|e| pred(&e.kind))
}

fn rules(kdef: &KernelDef, report: &KernelReport) -> Vec<&'static str> {
    race_check_report(kdef, report)
        .iter()
        .map(|d| d.rule)
        .collect()
}

/// Mutation 1 — merge before data arrival: the last status ack (the one
/// carrying the final watermark's data) is delayed until after the merge.
/// The merge then covers a region whose contribution exists but has not
/// arrived: `race-merge-order`.
#[test]
fn mutation_merge_before_data_arrival_is_flagged() {
    let (kdef, base) = cooperative_base();
    assert!(rules(&kdef, &base).is_empty(), "base report must be clean");
    let mut report = base.clone();
    let last_ack = report
        .trace
        .iter()
        .rposition(|e| matches!(e.kind, TraceKind::StatusArrived { .. }))
        .expect("has acks");
    let merge = position(&report.trace, |k| matches!(k, TraceKind::MergeDone)).expect("has merge");
    assert!(last_ack < merge, "clean trace acks before merging");
    let ack = report.trace.remove(last_ack);
    // `merge` shifted down by one after the removal; insert right after it.
    report.trace.insert(merge, ack);
    let flagged = rules(&kdef, &report);
    assert!(
        flagged.contains(&"race-merge-order"),
        "expected race-merge-order, got {flagged:?}"
    );
}

/// Mutation 2 — overlapping subkernel write ranges: the second CPU
/// subkernel's range is extended so its write footprint overlaps the
/// first's. Two contributions consumed by the same merge now write the
/// same elements: `race-overlapping-writes` (they are program-ordered on
/// the CPU lane, so not a concurrency violation — but the merge result
/// silently depends on apply order).
#[test]
fn mutation_overlapping_subkernel_writes_is_flagged() {
    let (kdef, base) = cooperative_base();
    let mut report = base.clone();
    // CPU subkernels descend: the first completion covers the highest
    // range and the second ends exactly where the first starts.
    let first = position(&report.trace, |k| {
        matches!(k, TraceKind::CpuSubkernelDone { .. })
    })
    .expect("has subkernels");
    let TraceKind::CpuSubkernelDone { from: f1, to: t1 } = report.trace[first].kind else {
        unreachable!()
    };
    let second = report.trace[first + 1..]
        .iter()
        .position(|e| matches!(e.kind, TraceKind::CpuSubkernelDone { .. }))
        .map(|i| first + 1 + i)
        .expect("has a second subkernel");
    let TraceKind::CpuSubkernelDone { from: f2, to: t2 } = report.trace[second].kind else {
        unreachable!()
    };
    assert_eq!(t2, f1, "descending subkernels are contiguous");
    // Extend the second subkernel one work-group into the first's range.
    report.trace[second].kind = TraceKind::CpuSubkernelDone {
        from: f2,
        to: t2 + 1,
    };
    assert!(t2 < t1, "overlap stays inside the first subkernel");
    let flagged = rules(&kdef, &report);
    assert!(
        flagged.contains(&"race-overlapping-writes"),
        "expected race-overlapping-writes, got {flagged:?}"
    );
}

/// Mutation 3 — status-ack reorder across batches: the first status ack
/// is moved before any data send was enqueued. An ack with no in-flight
/// transfer to acknowledge is a broken message edge:
/// `race-recv-without-send`.
#[test]
fn mutation_status_ack_reorder_is_flagged() {
    let (kdef, base) = cooperative_base();
    let mut report = base.clone();
    let first_ack = position(&report.trace, |k| {
        matches!(k, TraceKind::StatusArrived { .. })
    })
    .expect("has acks");
    let first_send = position(&report.trace, |k| {
        matches!(
            k,
            TraceKind::HdEnqueued { .. } | TraceKind::CoalescedSend { .. }
        )
    })
    .expect("has sends");
    assert!(first_send < first_ack, "clean trace sends before acking");
    let ack = report.trace.remove(first_ack);
    report.trace.insert(first_send, ack);
    let flagged = rules(&kdef, &report);
    assert!(
        flagged.contains(&"race-recv-without-send"),
        "expected race-recv-without-send, got {flagged:?}"
    );
}

/// Mutation 4 — stale-snapshot read: the final status ack claims a lower
/// boundary than any data actually shipped, so the merge covers elements
/// whose contribution was never sent — it would read a stale snapshot of
/// the owner's copy: `race-stale-read`.
#[test]
fn mutation_stale_snapshot_read_is_flagged() {
    let (kdef, base) = cooperative_base();
    let mut report = base.clone();
    let wm = final_watermark(&report);
    assert!(wm > 0, "cooperative_base guarantees a non-zero watermark");
    let stale_ack = report
        .trace
        .iter()
        .position(|e| matches!(e.kind, TraceKind::StatusArrived { boundary } if boundary == wm))
        .expect("watermark ack exists");
    report.trace[stale_ack].kind = TraceKind::StatusArrived { boundary: 0 };
    let flagged = rules(&kdef, &report);
    assert!(
        flagged.contains(&"race-stale-read"),
        "expected race-stale-read, got {flagged:?}"
    );
}
