//! The disjoint-write prover: every hand-marked Polybench kernel must be
//! proven, and an injected false `with_disjoint_writes` declaration must
//! be refuted.

use std::sync::Arc;

use fluidicl_check::{prove_disjoint, DisjointDriver, SWEEP_SEED};
use fluidicl_hetsim::KernelProfile;
use fluidicl_polybench::all_benchmarks;
use fluidicl_vcl::{ArgRole, ArgSpec, BufferId, KernelArg, KernelDef, Launch, Memory, NdRange};

#[test]
fn every_declared_polybench_kernel_is_proven_disjoint() {
    let mut verified = 0usize;
    for b in all_benchmarks() {
        let n = fluidicl_check::sweep_size(b.name);
        let mut driver = DisjointDriver::new((b.program)(n));
        assert!(
            b.run_and_validate_sized(&mut driver, n, SWEEP_SEED)
                .unwrap(),
            "{}: functional results must stay exact under shadowed replay",
            b.name
        );
        for f in driver.findings() {
            assert!(
                !f.is_false_declaration(),
                "{} kernel `{}`: declared disjoint but refuted: {:?}",
                b.name,
                f.kernel,
                f.detail
            );
        }
        verified += driver.verified_declarations();
    }
    // Every Polybench kernel is hand-marked `with_disjoint_writes`; each
    // launch of one must be proven (launches ≥ distinct kernels).
    assert!(
        verified >= 16,
        "expected all hand-marked kernels proven, got {verified} launches"
    );
}

#[test]
fn injected_false_declaration_is_refuted() {
    // Every work-group writes element 0 with a group-dependent value — the
    // textbook violation of the disjoint-writes promise.
    let k = Arc::new(
        KernelDef::new(
            "collider",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
            ],
            KernelProfile::new("collider"),
            |item, _, ins, outs| {
                let i = item.global_linear();
                outs.at(0)[0] = ins.get(0)[i] + i as f32;
            },
        )
        .with_disjoint_writes(),
    );
    let mut mem = Memory::new();
    mem.install(BufferId(0), (0..16).map(|i| i as f32).collect());
    mem.install(BufferId(1), vec![0.0; 16]);
    let launch = Launch::new(
        k,
        NdRange::d1(16, 4).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ],
    );
    let (proven, detail) = prove_disjoint(&launch, &mem).unwrap();
    assert!(!proven, "overlapping writes must refute the proof");
    let detail = detail.unwrap();
    assert!(
        detail.contains("element 0") && detail.contains("`dst`"),
        "detail names the element and buffer: {detail}"
    );
}

#[test]
fn disjoint_partial_writers_are_proven() {
    // Groups write interleaved, non-overlapping halves of their spans —
    // disjoint even though no group writes its whole span.
    let k = Arc::new(
        KernelDef::new(
            "evens",
            vec![
                ArgSpec::new("src", ArgRole::In),
                ArgSpec::new("dst", ArgRole::Out),
            ],
            KernelProfile::new("evens"),
            |item, _, ins, outs| {
                let i = item.global_linear();
                if i % 2 == 0 {
                    outs.at(0)[i] = 3.0 * ins.get(0)[i];
                }
            },
        )
        .with_disjoint_writes(),
    );
    let mut mem = Memory::new();
    mem.install(BufferId(0), (0..32).map(|i| 1.0 + i as f32).collect());
    mem.install(BufferId(1), vec![0.0; 32]);
    let launch = Launch::new(
        k,
        NdRange::d1(32, 8).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ],
    );
    let (proven, detail) = prove_disjoint(&launch, &mem).unwrap();
    assert!(proven, "disjoint partial writes must be proven: {detail:?}");
}
