//! DAG-builder validation sweep: the graph builder's footprint-derived
//! edges against sanitizer shadow write-maps, on every Polybench
//! benchmark.
//!
//! The builder ([`fluidicl::graph::node_access`] + `build_edges`) runs on
//! *declared* access patterns; the shadow executor
//! ([`execute_groups_shadowed`]) records what each launch *actually*
//! touched. Soundness of graph scheduling needs two containments per
//! benchmark run:
//!
//! * every element a launch really wrote is inside the builder's write
//!   footprint for that node (else a conflict could be invisible to the
//!   builder and two racing launches would be scheduled concurrently);
//! * every pair of launches whose *observed* write/read, read/write or
//!   write/write sets overlap has a builder edge ordering them.
//!
//! Over-approximation (declared-but-untouched elements, extra edges) only
//! costs parallelism, never correctness, so it is allowed.

use fluidicl::graph::{build_edges, node_access, NodeAccess};
use fluidicl_check::{sweep_size, SWEEP_SEED};
use fluidicl_des::SimDuration;
use fluidicl_polybench::{all_benchmarks, pipeline_benchmark};
use fluidicl_vcl::exec::execute_all;
use fluidicl_vcl::{
    execute_groups_shadowed, BufferId, ClDriver, ClResult, DirtyRanges, KernelArg, Launch, Memory,
    NdRange,
};

/// Observed per-launch access sets, from shadow execution.
struct Observed {
    reads: Vec<(BufferId, DirtyRanges)>,
    writes: Vec<(BufferId, DirtyRanges)>,
}

/// A [`ClDriver`] that, per enqueue, records both the builder's symbolic
/// [`NodeAccess`] and the shadow executor's observed access sets.
struct BuilderProbe {
    program: fluidicl_vcl::Program,
    mem: Memory,
    next_id: u64,
    declared: Vec<NodeAccess>,
    observed: Vec<Observed>,
}

impl BuilderProbe {
    fn new(program: fluidicl_vcl::Program) -> Self {
        BuilderProbe {
            program,
            mem: Memory::new(),
            next_id: 0,
            declared: Vec::new(),
            observed: Vec::new(),
        }
    }
}

impl ClDriver for BuilderProbe {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.mem.alloc(id, len);
        id
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        self.mem.write(id, data)
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let launch = Launch::new(def, ndrange, args.to_vec());
        let mem = &self.mem;
        self.declared.push(node_access(&launch, |id| {
            mem.get(id).map(<[f32]>::len).expect("buffer allocated")
        })?);
        let total = launch.ndrange.num_groups();
        let (ins, outs, _scalars) = launch.kernel.classify_args(&launch.args)?;
        let mut shadow_mem = self.mem.clone();
        let rec = execute_groups_shadowed(&launch, &mut shadow_mem, 0, total)?;
        let writes = outs
            .iter()
            .enumerate()
            .map(|(k, id)| {
                (
                    *id,
                    DirtyRanges::from_ranges(rec.total_writes(k).keys().map(|&i| (i, i + 1))),
                )
            })
            .collect();
        // The shadow layer records writes only; for reads, the declared
        // read footprint of an `In` argument is conservatively the ground
        // truth we hold the *edges* to — a kernel cannot read outside a
        // buffer, so the whole buffer bounds its reads.
        let reads = ins
            .iter()
            .map(|id| {
                let len = self.mem.get(*id).map(<[f32]>::len).expect("allocated");
                (*id, DirtyRanges::full(len))
            })
            .collect();
        self.observed.push(Observed { reads, writes });
        execute_all(&launch, &mut self.mem)
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        self.mem.get(id).map(<[f32]>::to_vec)
    }

    fn elapsed(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        Vec::new()
    }
}

fn overlap(a: &[(BufferId, DirtyRanges)], b: &[(BufferId, DirtyRanges)]) -> Vec<BufferId> {
    let mut hits = Vec::new();
    for (id, fa) in a {
        for (jd, fb) in b {
            if id == jd && !fa.intersect(fb).is_empty() {
                hits.push(*id);
            }
        }
    }
    hits
}

fn check_benchmark(name: &str, probe: &BuilderProbe) {
    // Containment: observed writes inside the declared write footprints.
    for (node, (decl, obs)) in probe.declared.iter().zip(&probe.observed).enumerate() {
        for (id, wrote) in &obs.writes {
            let declared = decl
                .writes
                .iter()
                .find(|(b, _)| b == id)
                .map(|(_, fp)| fp.clone())
                .unwrap_or_else(DirtyRanges::empty);
            let escaped = wrote.subtract(&declared);
            assert!(
                escaped.is_empty(),
                "{name} launch {node}: wrote {} element(s) of buffer {} outside \
                 the builder's write footprint",
                escaped.element_count(),
                id.0
            );
        }
    }
    // Completeness: every observed conflict pair is ordered by an edge.
    let edges = build_edges(&probe.declared);
    for i in 0..probe.observed.len() {
        for j in i + 1..probe.observed.len() {
            let (a, b) = (&probe.observed[i], &probe.observed[j]);
            let mut conflicts = overlap(&a.writes, &b.reads);
            conflicts.extend(overlap(&a.reads, &b.writes));
            conflicts.extend(overlap(&a.writes, &b.writes));
            for id in conflicts {
                assert!(
                    edges
                        .iter()
                        .any(|e| e.from == i && e.to == j && e.buffer == id),
                    "{name}: launches {i} and {j} conflict on buffer {} but the \
                     builder emitted no edge",
                    id.0
                );
            }
        }
    }
}

#[test]
fn builder_edges_cover_shadow_observed_conflicts() {
    let mut specs = all_benchmarks();
    specs.push(pipeline_benchmark());
    let mut launches = 0usize;
    for b in specs {
        let n = if b.name == "BATCHMM" {
            64
        } else {
            sweep_size(b.name)
        };
        let mut probe = BuilderProbe::new((b.program)(n));
        let ok = b
            .run_and_validate_sized(&mut probe, n, SWEEP_SEED)
            .expect("benchmark runs");
        assert!(ok, "{}: output mismatch", b.name);
        assert!(!probe.declared.is_empty());
        check_benchmark(b.name, &probe);
        launches += probe.declared.len();
    }
    assert!(
        launches >= 20,
        "expected the full suite swept, saw {launches} launches"
    );
}
