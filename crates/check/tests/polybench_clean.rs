//! Regression guard for the Polybench `ArgRole` declarations: the access
//! sanitizer must find nothing to say about any kernel in the suite, at
//! every launch of every benchmark, and the audited (functional) execution
//! must still match the sequential references.
//!
//! A misdeclared role here would silently corrupt co-executed results (the
//! runtime's transfer/merge decisions are driven by the declarations), so
//! any new kernel added to the suite gets vetted by this test.

use fluidicl_check::{sweep_size, AuditDriver, SWEEP_SEED};
use fluidicl_polybench::all_benchmarks;
use fluidicl_vcl::ClDriver;

#[test]
fn every_polybench_kernel_sanitizes_clean() {
    for b in all_benchmarks() {
        let n = sweep_size(b.name);
        let mut driver = AuditDriver::new((b.program)(n));
        let ok = b
            .run_and_validate_sized(&mut driver, n, SWEEP_SEED)
            .unwrap();
        assert!(
            ok,
            "{} diverged from reference under the audit driver",
            b.name
        );
        assert!(
            !driver.findings().is_empty(),
            "{} launched no kernels",
            b.name
        );
        for finding in driver.findings() {
            assert!(
                finding.diagnostics.is_empty(),
                "{} kernel `{}` was flagged: {:?}",
                b.name,
                finding.kernel,
                finding.diagnostics
            );
        }
    }
}

#[test]
fn audit_driver_reports_kernel_names_in_order() {
    let b = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "ATAX")
        .unwrap();
    let n = sweep_size(b.name);
    let mut driver = AuditDriver::new((b.program)(n));
    assert!(b
        .run_and_validate_sized(&mut driver, n, SWEEP_SEED)
        .unwrap());
    assert_eq!(driver.findings().len(), b.kernel_count);
    assert_eq!(driver.kernel_times().len(), b.kernel_count);
    assert_eq!(driver.diagnostic_count(), 0);
}
