//! The access sanitizer against deliberately lying kernels — every
//! `ArgRole` misdeclaration class must be flagged, and honest kernels must
//! pass with zero diagnostics.

use std::sync::Arc;

use fluidicl_check::{sanitize_launch, LintSeverity};
use fluidicl_hetsim::KernelProfile;
use fluidicl_vcl::{ArgRole, ArgSpec, BufferId, KernelArg, KernelDef, Launch, Memory, NdRange};

fn mem_with(n: usize, bufs: &[(u64, f32)]) -> Memory {
    let mut mem = Memory::new();
    for (id, fill) in bufs {
        mem.install(BufferId(*id), vec![*fill; n]);
    }
    mem
}

fn rules(launch: &Launch, mem: &Memory) -> Vec<(String, LintSeverity)> {
    sanitize_launch(launch, mem)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.severity))
        .collect()
}

#[test]
fn honest_kernel_is_clean() {
    let k = Arc::new(KernelDef::new(
        "axpy",
        vec![
            ArgSpec::new("x", ArgRole::In),
            ArgSpec::new("y", ArgRole::InOut),
            ArgSpec::new("out", ArgRole::Out),
            ArgSpec::new("a", ArgRole::Scalar),
        ],
        KernelProfile::new("axpy"),
        |item, scalars, ins, outs| {
            let i = item.global_linear();
            let y = outs.read(0)[i];
            outs.at(0)[i] = y + 1.0;
            outs.at(1)[i] = scalars.f32(0) * ins.get(0)[i] + y;
        },
    ));
    let mem = mem_with(16, &[(0, 2.0), (1, 3.0), (2, 0.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(16, 4).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
            KernelArg::Buffer(BufferId(2)),
            KernelArg::F32(1.5),
        ],
    );
    assert_eq!(rules(&launch, &mem), vec![]);
}

#[test]
fn out_accumulation_is_flagged() {
    // The classic lie: `dst` accumulates (`+=`) but is declared `Out`.
    // Under co-execution each device starts from its own poison garbage.
    let k = Arc::new(KernelDef::new(
        "acc",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
        ],
        KernelProfile::new("acc"),
        |item, _, ins, outs| {
            let i = item.global_linear();
            outs.at(0)[i] += ins.get(0)[i];
        },
    ));
    let mem = mem_with(16, &[(0, 2.0), (1, 0.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(16, 4).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ],
    );
    let r = rules(&launch, &mem);
    assert!(
        r.contains(&("out-read-before-write".to_string(), LintSeverity::Error)),
        "{r:?}"
    );
}

#[test]
fn conflicting_cross_group_writes_are_flagged() {
    // Every work-group writes its own id into element 0: the final value
    // depends on which device ran last.
    let k = Arc::new(KernelDef::new(
        "race",
        vec![ArgSpec::new("dst", ArgRole::Out)],
        KernelProfile::new("race"),
        |item, _, _, outs| {
            outs.at(0)[0] = item.group[0] as f32;
        },
    ));
    let mem = mem_with(16, &[(0, 0.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(16, 4).unwrap(),
        vec![KernelArg::Buffer(BufferId(0))],
    );
    let r = rules(&launch, &mem);
    assert!(
        r.contains(&("write-conflict".to_string(), LintSeverity::Error)),
        "{r:?}"
    );
}

#[test]
fn identical_duplicate_writes_are_benign() {
    // Every group writes the same constant into element 0 (and its own
    // slot): idempotent duplication, exactly what FluidiCL's overlapping
    // wave/subkernel execution produces. Must NOT be flagged.
    let k = Arc::new(KernelDef::new(
        "dup",
        vec![ArgSpec::new("dst", ArgRole::Out)],
        KernelProfile::new("dup"),
        |item, _, _, outs| {
            let i = item.global_linear();
            outs.at(0)[0] = 42.0;
            if i > 0 {
                outs.at(0)[i] = i as f32;
            }
        },
    ));
    let mem = mem_with(16, &[(0, 0.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(16, 4).unwrap(),
        vec![KernelArg::Buffer(BufferId(0))],
    );
    assert_eq!(rules(&launch, &mem), vec![]);
}

#[test]
fn unused_input_is_warned() {
    let k = Arc::new(KernelDef::new(
        "copy1",
        vec![
            ArgSpec::new("used", ArgRole::In),
            ArgSpec::new("unused", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
        ],
        KernelProfile::new("copy1"),
        |item, _, ins, outs| {
            let i = item.global_linear();
            outs.at(0)[i] = ins.get(0)[i] + 1.0;
        },
    ));
    let mem = mem_with(8, &[(0, 1.0), (1, 1.0), (2, 0.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(8, 4).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
            KernelArg::Buffer(BufferId(2)),
        ],
    );
    let r = rules(&launch, &mem);
    assert_eq!(r, vec![("unused-input".to_string(), LintSeverity::Warning)]);
}

#[test]
fn write_only_inout_is_warned() {
    // Declared InOut but never reads its previous contents: the forced
    // pre-kernel transfer is wasted.
    let k = Arc::new(KernelDef::new(
        "wronly",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::InOut),
        ],
        KernelProfile::new("wronly"),
        |item, _, ins, outs| {
            let i = item.global_linear();
            outs.at(0)[i] = ins.get(0)[i] * 2.0;
        },
    ));
    let mem = mem_with(8, &[(0, 3.0), (1, 7.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(8, 4).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ],
    );
    let r = rules(&launch, &mem);
    assert_eq!(
        r,
        vec![("inout-never-read".to_string(), LintSeverity::Warning)]
    );
}

#[test]
fn never_written_output_is_warned() {
    let k = Arc::new(KernelDef::new(
        "lazy",
        vec![
            ArgSpec::new("dst", ArgRole::Out),
            ArgSpec::new("ghost", ArgRole::Out),
        ],
        KernelProfile::new("lazy"),
        |item, _, _, outs| {
            let i = item.global_linear();
            outs.at(0)[i] = i as f32 + 1.0;
        },
    ));
    let mem = mem_with(8, &[(0, 0.0), (1, 0.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(8, 4).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ],
    );
    let r = rules(&launch, &mem);
    assert_eq!(
        r,
        vec![("output-never-written".to_string(), LintSeverity::Warning)]
    );
}

#[test]
fn scalar_passed_a_buffer_is_a_signature_error() {
    let k = Arc::new(KernelDef::new(
        "sig",
        vec![
            ArgSpec::new("dst", ArgRole::Out),
            ArgSpec::new("n", ArgRole::Scalar),
        ],
        KernelProfile::new("sig"),
        |item, _, _, outs| {
            let i = item.global_linear();
            outs.at(0)[i] = 0.0;
        },
    ));
    let mem = mem_with(8, &[(0, 0.0), (1, 0.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(8, 4).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ],
    );
    let r = rules(&launch, &mem);
    assert_eq!(r, vec![("signature".to_string(), LintSeverity::Error)]);
}

#[test]
fn sanitizer_leaves_caller_memory_untouched() {
    let k = Arc::new(KernelDef::new(
        "scale2",
        vec![
            ArgSpec::new("src", ArgRole::In),
            ArgSpec::new("dst", ArgRole::Out),
        ],
        KernelProfile::new("scale2"),
        |item, _, ins, outs| {
            let i = item.global_linear();
            outs.at(0)[i] = ins.get(0)[i] * 2.0;
        },
    ));
    let mem = mem_with(8, &[(0, 5.0), (1, 9.0)]);
    let launch = Launch::new(
        k,
        NdRange::d1(8, 4).unwrap(),
        vec![
            KernelArg::Buffer(BufferId(0)),
            KernelArg::Buffer(BufferId(1)),
        ],
    );
    let _ = sanitize_launch(&launch, &mem);
    assert_eq!(mem.get(BufferId(0)).unwrap(), &[5.0; 8]);
    assert_eq!(mem.get(BufferId(1)).unwrap(), &[9.0; 8], "dst not poisoned");
}
