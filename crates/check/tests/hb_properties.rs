//! Property tests for the vector-clock happens-before core.
//!
//! Randomized over [`fluidicl_des::SplitMix64`] (seeded, so failures
//! reproduce): the clock ordering must be a strict partial order, the
//! join must be a commutative/associative/idempotent least upper bound,
//! and — the fundamental theorem of vector clocks — the clock order of a
//! simulated execution must coincide exactly with reachability through
//! program order and message edges.

use fluidicl_check::{check_hb, HbEvent, HbOp, VClock};
use fluidicl_des::SplitMix64;
use fluidicl_vcl::DirtyRanges;

/// Draws a random clock over `endpoints` components with small entries
/// (small values make coincidences — equal components, dominated clocks —
/// common enough to exercise every branch of `leq`).
fn random_clock(rng: &mut SplitMix64, endpoints: usize) -> VClock {
    let mut c = VClock::new(endpoints);
    for ep in 0..endpoints {
        for _ in 0..(rng.next_u64() % 4) {
            c.tick(ep);
        }
    }
    c
}

#[test]
fn happens_before_is_a_strict_partial_order() {
    let mut rng = SplitMix64::new(0xC10C);
    for _ in 0..500 {
        let n = 1 + (rng.next_u64() % 4) as usize;
        let a = random_clock(&mut rng, n);
        let b = random_clock(&mut rng, n);
        let c = random_clock(&mut rng, n);
        // Irreflexive.
        assert!(!a.lt(&a), "lt must be irreflexive: {a:?}");
        // Antisymmetric (vacuously, via irreflexivity of the strict order).
        assert!(!(a.lt(&b) && b.lt(&a)), "lt must be antisymmetric");
        // Transitive.
        if a.lt(&b) && b.lt(&c) {
            assert!(a.lt(&c), "lt must be transitive: {a:?} {b:?} {c:?}");
        }
        // Trichotomy-with-concurrency: exactly one of =, <, >, ∥ holds.
        let cases = [a == b, a.lt(&b), b.lt(&a), a.concurrent(&b)];
        assert_eq!(
            cases.iter().filter(|x| **x).count(),
            1,
            "exactly one ordering relation must hold: {a:?} {b:?}"
        );
    }
}

#[test]
fn join_is_commutative_associative_idempotent() {
    let mut rng = SplitMix64::new(0x10_1A);
    for _ in 0..500 {
        let n = 1 + (rng.next_u64() % 4) as usize;
        let a = random_clock(&mut rng, n);
        let b = random_clock(&mut rng, n);
        let c = random_clock(&mut rng, n);
        assert_eq!(a.join(&b), b.join(&a), "join must be commutative");
        assert_eq!(
            a.join(&b).join(&c),
            a.join(&b.join(&c)),
            "join must be associative"
        );
        assert_eq!(a.join(&a), a, "join must be idempotent");
        // Least upper bound: above both operands, below any common upper
        // bound.
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j), "join must be an upper bound");
        let ub = a.join(&b).join(&c);
        assert!(j.leq(&ub), "join must be the LEAST upper bound");
    }
}

/// One event of a simulated execution: its endpoint and its clock, plus
/// the indices of its direct predecessors (program order + message edge).
struct SimEvent {
    clock: VClock,
    preds: Vec<usize>,
}

/// Simulates a random execution over `endpoints`: each step is either a
/// local step, a send, or a receive of a random in-flight message.
/// Returns the event list with clocks and the true predecessor edges.
fn simulate(rng: &mut SplitMix64, endpoints: usize, steps: usize) -> Vec<SimEvent> {
    let mut clocks: Vec<VClock> = (0..endpoints).map(|_| VClock::new(endpoints)).collect();
    let mut last_event: Vec<Option<usize>> = vec![None; endpoints];
    // In-flight messages: (sender event index, sender clock at send).
    let mut in_flight: Vec<(usize, VClock)> = Vec::new();
    let mut events = Vec::new();
    for _ in 0..steps {
        let ep = (rng.next_u64() % endpoints as u64) as usize;
        let idx = events.len();
        let mut preds = Vec::new();
        if let Some(p) = last_event[ep] {
            preds.push(p);
        }
        clocks[ep].tick(ep);
        match rng.next_u64() % 3 {
            // Send: publish this event's clock as a message.
            1 => in_flight.push((idx, clocks[ep].clone())),
            // Receive: join a random in-flight message (message edge).
            2 if !in_flight.is_empty() => {
                let pick = (rng.next_u64() % in_flight.len() as u64) as usize;
                let (sender_idx, sender_clock) = in_flight.swap_remove(pick);
                clocks[ep] = clocks[ep].join(&sender_clock);
                preds.push(sender_idx);
            }
            // Local step.
            _ => {}
        }
        events.push(SimEvent {
            clock: clocks[ep].clone(),
            preds,
        });
        last_event[ep] = Some(idx);
    }
    events
}

#[test]
fn clock_order_equals_reachability_through_program_order_and_messages() {
    let mut rng = SplitMix64::new(0xF00D);
    for round in 0..50 {
        let endpoints = 2 + (rng.next_u64() % 3) as usize;
        let events = simulate(&mut rng, endpoints, 40);
        let n = events.len();
        // Transitive closure over the true edges (events are in causal
        // order, so one forward pass per target suffices).
        let mut reach = vec![vec![false; n]; n];
        for (j, ev) in events.iter().enumerate() {
            for &p in &ev.preds {
                reach[p][j] = true;
                let through_p: Vec<usize> = (0..n).filter(|&i| reach[i][p]).collect();
                for i in through_p {
                    reach[i][j] = true;
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // The fundamental theorem: clock(i) < clock(j) iff event i
                // reaches event j through program order and message edges.
                assert_eq!(
                    events[i].clock.lt(&events[j].clock),
                    reach[i][j],
                    "round {round}: event {i} {:?} vs event {j} {:?}",
                    events[i].clock,
                    events[j].clock
                );
            }
        }
    }
}

#[test]
fn engine_accepts_randomized_clean_pipelines() {
    // Random clean runs: a contributor writes+sends K disjoint chunks in
    // order, the owner acks each, then merges and reads. The engine must
    // never flag a well-formed pipeline, whatever the chunk layout.
    let mut rng = SplitMix64::new(0xCAFE);
    for _ in 0..100 {
        let chunks = 1 + (rng.next_u64() % 5) as usize;
        let chunk = 1 + (rng.next_u64() % 7) as usize;
        let total = chunks * chunk;
        let mut events = vec![HbEvent::new(
            0,
            "local",
            HbOp::Write {
                ranges: vec![DirtyRanges::empty()],
            },
        )];
        for k in 0..chunks {
            let lo = k * chunk;
            let hi = lo + chunk;
            let ranges = vec![DirtyRanges::from_ranges([(lo, hi)])];
            events.push(HbEvent::new(
                1,
                format!("w{k}"),
                HbOp::Write {
                    ranges: ranges.clone(),
                },
            ));
            events.push(HbEvent::new(
                1,
                format!("s{k}"),
                HbOp::Send {
                    msg: k as u64,
                    ranges,
                },
            ));
            events.push(HbEvent::new(
                0,
                format!("a{k}"),
                HbOp::Recv { msg: k as u64 },
            ));
        }
        events.push(HbEvent::new(
            0,
            "merge",
            HbOp::Merge {
                ranges: vec![DirtyRanges::from_ranges([(0, total)])],
            },
        ));
        events.push(HbEvent::new(
            0,
            "read",
            HbOp::Read {
                ranges: vec![DirtyRanges::from_ranges([(0, total)])],
            },
        ));
        let diags = check_hb(2, 1, &events);
        assert!(diags.is_empty(), "clean pipeline flagged: {diags:?}");
    }
}
