//! Fault-injection sweep: every Polybench benchmark × every [`FaultKind`]
//! × N seeds, with protocol validation on.
//!
//! Each cell runs one benchmark under a seeded, deterministic
//! [`FaultPlan`]. The recovery contract says the run must either
//! **recover** — outputs bit-identical to the sequential reference, i.e.
//! byte-identical to a fault-free run — or surface a **typed** error
//! ([`ClError::DeviceLost`] / [`ClError::Timeout`]); anything else
//! (mismatched output, an untyped error) is a sweep failure. Every cell
//! executes twice and both executions must reach the same outcome,
//! pinning the determinism the fault layer promises: same seed, same
//! schedule, same result.
//!
//! The sweep binary runs this via `fluidicl-check --faults [--seeds N]`
//! and writes a `FAULTS_summary.json` artifact in the same hand-written
//! line-per-record JSON style as `BENCH_repro.json`.

use fluidicl::{Fluidicl, FluidiclConfig, RecoveryPolicy, TraceKind};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::{all_benchmarks, BenchmarkSpec};
use fluidicl_vcl::{ClError, FaultKind, FaultPlan};

use crate::{sweep_size, SWEEP_SEED};

/// Outcome of one (benchmark × fault kind × seed) sweep cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellOutcome {
    /// Outputs bit-identical to the sequential reference (and therefore to
    /// a fault-free run, which is validated against the same reference).
    Recovered,
    /// The run surfaced a typed, contract-sanctioned error.
    TypedError(String),
    /// Outputs diverged from the reference — a sweep failure.
    Mismatch,
    /// An error outside the fault contract — a sweep failure.
    UnexpectedError(String),
}

impl CellOutcome {
    /// Whether this outcome satisfies the recovery contract.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Recovered | CellOutcome::TypedError(_))
    }

    /// Stable label used in the JSON summary.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Recovered => "recovered",
            CellOutcome::TypedError(_) => "typed-error",
            CellOutcome::Mismatch => "mismatch",
            CellOutcome::UnexpectedError(_) => "unexpected-error",
        }
    }
}

/// One fully-described sweep cell.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Injected fault kind.
    pub kind: FaultKind,
    /// Sweep seed index (0..seeds).
    pub seed: u64,
    /// Derived fault-plan seed the cell actually ran with.
    pub plan_seed: u64,
    /// Outcome of the first execution.
    pub outcome: CellOutcome,
    /// Whether the planned fault actually triggered (small benchmarks may
    /// finish before the trigger point is reached — then the run is simply
    /// fault-free).
    pub fired: bool,
    /// Whether the second execution reproduced the first bit-for-bit.
    pub deterministic: bool,
}

impl FaultCell {
    /// Whether this cell fails the sweep.
    pub fn is_failure(&self) -> bool {
        !self.outcome.is_ok() || !self.deterministic
    }
}

/// Derives the per-cell fault seed from the sweep seed and the cell
/// coordinates (splitmix64 finalizer: stable across runs, well mixed).
fn plan_seed(bench_idx: u64, kind_idx: u64, seed: u64) -> u64 {
    let mut z = SWEEP_SEED
        .wrapping_add(bench_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(kind_idx.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(seed.wrapping_mul(0x1656_67B1_9E37_79F9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn run_once(b: &BenchmarkSpec, kind: FaultKind, plan_seed: u64) -> (CellOutcome, bool) {
    run_once_on(&MachineConfig::paper_testbed(), b, kind, plan_seed)
}

fn run_once_on(
    machine: &MachineConfig,
    b: &BenchmarkSpec,
    kind: FaultKind,
    plan_seed: u64,
) -> (CellOutcome, bool) {
    let n = sweep_size(b.name);
    let config = FluidiclConfig::default()
        .with_validate_protocol(true)
        .with_faults(Some(FaultPlan::new(kind, plan_seed)));
    let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
    let defs = (b.program)(n);
    let mut outcome = match b.run_and_validate_sized(&mut rt, n, SWEEP_SEED) {
        Ok(true) => CellOutcome::Recovered,
        Ok(false) => CellOutcome::Mismatch,
        Err(e @ (ClError::DeviceLost { .. } | ClError::Timeout { .. })) => {
            CellOutcome::TypedError(e.to_string())
        }
        Err(e) => CellOutcome::UnexpectedError(e.to_string()),
    };
    // Happens-before check over the faulted traces: a fault edge must
    // excuse exactly the transfer it damaged, nothing more, so even a
    // recovered run with a racy merge fails the cell.
    if outcome == CellOutcome::Recovered {
        'reports: for report in rt.reports() {
            let kdef = defs
                .kernel(&report.kernel)
                .expect("reported kernel is registered");
            for d in crate::race_check_report(&kdef, report) {
                if d.severity == fluidicl::LintSeverity::Error {
                    outcome = CellOutcome::UnexpectedError(format!(
                        "race in kernel `{}`: {d}",
                        report.kernel
                    ));
                    break 'reports;
                }
            }
        }
    }
    (outcome, rt.fault_fired())
}

/// Runs one sweep cell: two executions of `bench` under `kind` with the
/// given plan seed, checking the recovery contract and determinism.
pub fn run_fault_cell(b: &BenchmarkSpec, kind: FaultKind, seed: u64, plan_seed: u64) -> FaultCell {
    let (outcome, fired) = run_once(b, kind, plan_seed);
    let (again, fired_again) = run_once(b, kind, plan_seed);
    FaultCell {
        bench: b.name,
        kind,
        seed,
        plan_seed,
        deterministic: outcome == again && fired == fired_again,
        outcome,
        fired,
    }
}

/// Runs the full sweep — every benchmark × fault kind × `seeds` seed
/// indices — fanned out over the worker pool, in stable cell order.
pub fn run_fault_sweep(seeds: u64) -> Vec<FaultCell> {
    let mut units = Vec::new();
    for (bi, b) in all_benchmarks().into_iter().enumerate() {
        for (ki, kind) in FaultKind::all().into_iter().enumerate() {
            for s in 0..seeds {
                units.push((b, kind, s, plan_seed(bi as u64, ki as u64, s)));
            }
        }
    }
    fluidicl_par::par_map(units, |(b, kind, s, ps)| run_fault_cell(&b, kind, s, ps))
}

/// One cell of the N=3 non-owner-loss sweep: a three-device machine
/// (CPU + owner GPU + peer GPU) loses a non-owner endpoint mid-kernel.
///
/// The injector's subkernel-kill trigger counts launches across *all*
/// non-owner endpoints, so across seeds the victim alternates between the
/// CPU and the peer GPU. The contract is stricter than the two-device
/// sweep's: the owner survives a non-owner loss by construction, so the
/// survivors must always finish with output bit-identical to the sequential
/// reference (and therefore to a fault-free run) — a typed error is a
/// failure here, not an accepted outcome. Recovered traces are additionally
/// happens-before checked, and every cell runs twice for determinism.
#[derive(Clone, Debug)]
pub struct NdevLossCell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Sweep seed index (0..seeds).
    pub seed: u64,
    /// Derived fault-plan seed the cell ran with.
    pub plan_seed: u64,
    /// Outcome of the first execution.
    pub outcome: CellOutcome,
    /// Whether the planned loss actually triggered.
    pub fired: bool,
    /// Whether the second execution reproduced the first bit-for-bit.
    pub deterministic: bool,
}

impl NdevLossCell {
    /// Whether this cell fails the sweep (anything but a deterministic,
    /// bit-identical recovery).
    pub fn is_failure(&self) -> bool {
        self.outcome != CellOutcome::Recovered || !self.deterministic
    }
}

/// Runs the N=3 non-owner-loss sweep: every benchmark × `seeds` seed
/// indices on [`MachineConfig::paper_testbed_3dev`] under a
/// [`FaultKind::CpuLost`] plan (the subkernel-kill fault, which on a
/// three-device machine strikes whichever non-owner launch hits the
/// trigger).
pub fn run_ndev_loss_sweep(seeds: u64) -> Vec<NdevLossCell> {
    let kind_idx = FaultKind::all()
        .iter()
        .position(|k| *k == FaultKind::CpuLost)
        .expect("subkernel-kill kind") as u64;
    let mut units = Vec::new();
    for (bi, b) in all_benchmarks().into_iter().enumerate() {
        for s in 0..seeds {
            // Offset the kind coordinate so these cells draw plan seeds
            // disjoint from the two-device sweep's.
            units.push((b, s, plan_seed(bi as u64, 100 + kind_idx, s)));
        }
    }
    fluidicl_par::par_map(units, |(b, s, ps)| {
        let machine = MachineConfig::paper_testbed_3dev();
        let (outcome, fired) = run_once_on(&machine, &b, FaultKind::CpuLost, ps);
        let (again, fired_again) = run_once_on(&machine, &b, FaultKind::CpuLost, ps);
        NdevLossCell {
            bench: b.name,
            seed: s,
            plan_seed: ps,
            deterministic: outcome == again && fired == fired_again,
            outcome,
            fired,
        }
    })
}

/// One row of the fault-aware chunk-shrink comparison: the same benchmark
/// under the same `TransferTransient` fault plan, once with
/// `shrink_chunk_on_retry` on (the default) and once with it off.
///
/// With the shrink enabled the controller halves the CPU chunk as soon as
/// a transfer needs a retry, so every subkernel launched after the fault
/// is smaller: its results reach the GPU in finer batches, and the work
/// stranded un-acknowledged on the flaky link at any instant — the work a
/// later watchdog abandonment would lose — shrinks with it. `at_risk_*`
/// measures exactly that: the largest subkernel launched after the first
/// transfer fault (in work-groups). The merged counts are reported for
/// context; the *contract* is that the shrink never enlarges the at-risk
/// window and keeps strictly more CPU work mergeable somewhere in the
/// sweep.
#[derive(Clone, Debug)]
pub struct ShrinkCell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Derived fault-plan seed the cell ran with.
    pub plan_seed: u64,
    /// Whether the transient fault actually fired.
    pub fired: bool,
    /// Largest post-fault subkernel (work-groups) with the shrink enabled.
    pub at_risk_with_shrink: u64,
    /// Largest post-fault subkernel (work-groups) with the shrink disabled.
    pub at_risk_without_shrink: u64,
    /// CPU work-groups merged with shrink-on-retry enabled.
    pub merged_with_shrink: u64,
    /// CPU work-groups merged with shrink-on-retry disabled.
    pub merged_without_shrink: u64,
}

impl ShrinkCell {
    /// Whether this cell violates the shrink contract: halving the chunk
    /// on retry must never launch a *larger* post-fault subkernel.
    pub fn is_failure(&self) -> bool {
        self.at_risk_with_shrink > self.at_risk_without_shrink
    }

    /// Whether the shrink strictly reduced the post-fault at-risk window.
    pub fn improved(&self) -> bool {
        self.at_risk_with_shrink < self.at_risk_without_shrink
    }
}

/// Runs one benchmark under a transient-transfer plan and extracts the
/// merged work-group total plus the largest subkernel launched after the
/// first transfer fault (0 if no subkernel starts after the fault).
fn transient_run(b: &BenchmarkSpec, plan_seed: u64, shrink: bool) -> (u64, u64, bool) {
    let n = sweep_size(b.name);
    let config = FluidiclConfig::default()
        .with_validate_protocol(true)
        .with_recovery(RecoveryPolicy::default().with_shrink_chunk_on_retry(shrink))
        .with_faults(Some(FaultPlan::new(
            FaultKind::TransferTransient,
            plan_seed,
        )));
    let mut rt = Fluidicl::new(MachineConfig::paper_testbed(), config, (b.program)(n));
    let ok = b
        .run_and_validate_sized(&mut rt, n, SWEEP_SEED)
        .expect("transient transfer faults are always recoverable");
    assert!(
        ok,
        "{}: transient-fault run diverged from reference",
        b.name
    );
    let merged = rt.reports().iter().map(|r| r.cpu_merged_wgs).sum();
    let mut at_risk = 0u64;
    for r in rt.reports() {
        let mut fault_at = None;
        for ev in &r.trace {
            match ev.kind {
                TraceKind::TransferFault { .. } if fault_at.is_none() => fault_at = Some(ev.at),
                TraceKind::CpuSubkernelStart { from, to, .. }
                    if fault_at.is_some_and(|f| ev.at >= f) =>
                {
                    at_risk = at_risk.max(to.saturating_sub(from));
                }
                _ => {}
            }
        }
    }
    (merged, at_risk, rt.fault_fired())
}

/// Runs the chunk-shrink comparison over every benchmark × `seeds` seed
/// indices (reusing the sweep's per-cell seed derivation so the transient
/// fault lands at the same point in both runs).
pub fn run_shrink_comparison(seeds: u64) -> Vec<ShrinkCell> {
    let kind_idx = FaultKind::all()
        .iter()
        .position(|k| *k == FaultKind::TransferTransient)
        .expect("transient kind") as u64;
    let mut units = Vec::new();
    for (bi, b) in all_benchmarks().into_iter().enumerate() {
        for s in 0..seeds {
            units.push((b, plan_seed(bi as u64, kind_idx, s)));
        }
    }
    fluidicl_par::par_map(units, |(b, ps)| {
        let (merged_on, risk_on, fired_on) = transient_run(&b, ps, true);
        let (merged_off, risk_off, fired_off) = transient_run(&b, ps, false);
        ShrinkCell {
            bench: b.name,
            plan_seed: ps,
            fired: fired_on || fired_off,
            at_risk_with_shrink: risk_on,
            at_risk_without_shrink: risk_off,
            merged_with_shrink: merged_on,
            merged_without_shrink: merged_off,
        }
    })
}

/// Minimal JSON string escaping for outcome details.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the sweep as hand-written JSON, one cell per line (the same
/// diff-friendly style as `BENCH_repro.json`): the CI artifact uploaded
/// next to the perf numbers.
pub fn render_faults_json(
    cells: &[FaultCell],
    ndev: &[NdevLossCell],
    shrink: &[ShrinkCell],
    seeds: u64,
) -> String {
    let recovered = cells
        .iter()
        .filter(|c| c.outcome == CellOutcome::Recovered)
        .count();
    let typed = cells
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::TypedError(_)))
        .count();
    let fired = cells.iter().filter(|c| c.fired).count();
    let failures = cells.iter().filter(|c| c.is_failure()).count();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"seeds\": {seeds},\n"));
    s.push_str(&format!("  \"cells\": {},\n", cells.len()));
    s.push_str(&format!("  \"fired\": {fired},\n"));
    s.push_str(&format!("  \"recovered\": {recovered},\n"));
    s.push_str(&format!("  \"typed_errors\": {typed},\n"));
    s.push_str(&format!("  \"failures\": {failures},\n"));
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let detail = match &c.outcome {
            CellOutcome::TypedError(d) | CellOutcome::UnexpectedError(d) => {
                format!(", \"detail\": \"{}\"", esc(d))
            }
            _ => String::new(),
        };
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"kind\": \"{}\", \"seed\": {}, \"plan_seed\": {}, \
             \"outcome\": \"{}\", \"fired\": {}, \"deterministic\": {}{detail}}}{comma}\n",
            c.bench,
            c.kind.name(),
            c.seed,
            c.plan_seed,
            c.outcome.label(),
            c.fired,
            c.deterministic
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"ndev_loss\": [\n");
    for (i, c) in ndev.iter().enumerate() {
        let comma = if i + 1 < ndev.len() { "," } else { "" };
        let detail = match &c.outcome {
            CellOutcome::TypedError(d) | CellOutcome::UnexpectedError(d) => {
                format!(", \"detail\": \"{}\"", esc(d))
            }
            _ => String::new(),
        };
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"machine\": \"paper-testbed-3dev\", \"seed\": {}, \
             \"plan_seed\": {}, \"outcome\": \"{}\", \"fired\": {}, \
             \"deterministic\": {}{detail}}}{comma}\n",
            c.bench,
            c.seed,
            c.plan_seed,
            c.outcome.label(),
            c.fired,
            c.deterministic
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"shrink_on_retry\": [\n");
    for (i, c) in shrink.iter().enumerate() {
        let comma = if i + 1 < shrink.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"plan_seed\": {}, \"fired\": {}, \
             \"at_risk_with_shrink\": {}, \"at_risk_without_shrink\": {}, \
             \"merged_with_shrink\": {}, \"merged_without_shrink\": {}}}{comma}\n",
            c.bench,
            c.plan_seed,
            c.fired,
            c.at_risk_with_shrink,
            c.at_risk_without_shrink,
            c.merged_with_shrink,
            c.merged_without_shrink
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_seed_is_stable_and_distinct() {
        assert_eq!(plan_seed(0, 0, 0), plan_seed(0, 0, 0));
        let seeds: Vec<u64> = (0..4)
            .flat_map(|b| (0..7).flat_map(move |k| (0..4).map(move |s| plan_seed(b, k, s))))
            .collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len(), "cell seeds must not collide");
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(esc("a \"b\" \\c"), "a \\\"b\\\" \\\\c");
    }
}
