//! Fault-injection sweep: every Polybench benchmark × every [`FaultKind`]
//! × N seeds, with protocol validation on.
//!
//! Each cell runs one benchmark under a seeded, deterministic
//! [`FaultPlan`]. The recovery contract says the run must either
//! **recover** — outputs bit-identical to the sequential reference, i.e.
//! byte-identical to a fault-free run — or surface a **typed** error
//! ([`ClError::DeviceLost`] / [`ClError::Timeout`]); anything else
//! (mismatched output, an untyped error) is a sweep failure. Every cell
//! executes twice and both executions must reach the same outcome,
//! pinning the determinism the fault layer promises: same seed, same
//! schedule, same result.
//!
//! The sweep binary runs this via `fluidicl-check --faults [--seeds N]`
//! and writes a `FAULTS_summary.json` artifact in the same hand-written
//! line-per-record JSON style as `BENCH_repro.json`.

use fluidicl::{Fluidicl, FluidiclConfig, KernelReport, RecoveryPolicy, TraceKind};
use fluidicl_hetsim::MachineConfig;
use fluidicl_polybench::{all_benchmarks, BenchmarkSpec};
use fluidicl_vcl::{ClError, FaultKind, FaultPlan};

use crate::{sweep_size, SWEEP_SEED};

/// Outcome of one (benchmark × fault kind × seed) sweep cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellOutcome {
    /// Outputs bit-identical to the sequential reference (and therefore to
    /// a fault-free run, which is validated against the same reference).
    Recovered,
    /// The run surfaced a typed, contract-sanctioned error.
    TypedError(String),
    /// Outputs diverged from the reference — a sweep failure.
    Mismatch,
    /// An error outside the fault contract — a sweep failure.
    UnexpectedError(String),
}

impl CellOutcome {
    /// Whether this outcome satisfies the recovery contract.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Recovered | CellOutcome::TypedError(_))
    }

    /// Stable label used in the JSON summary.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Recovered => "recovered",
            CellOutcome::TypedError(_) => "typed-error",
            CellOutcome::Mismatch => "mismatch",
            CellOutcome::UnexpectedError(_) => "unexpected-error",
        }
    }
}

/// One fully-described sweep cell.
#[derive(Clone, Debug)]
pub struct FaultCell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Injected fault kind.
    pub kind: FaultKind,
    /// Sweep seed index (0..seeds).
    pub seed: u64,
    /// Derived fault-plan seed the cell actually ran with.
    pub plan_seed: u64,
    /// Outcome of the first execution.
    pub outcome: CellOutcome,
    /// Whether the planned fault actually triggered (small benchmarks may
    /// finish before the trigger point is reached — then the run is simply
    /// fault-free).
    pub fired: bool,
    /// Whether the second execution reproduced the first bit-for-bit.
    pub deterministic: bool,
    /// Simulated instant the first fault-vocabulary trace event was
    /// recorded at, if any fired.
    pub fault_at_ns: Option<u64>,
    /// Simulated completion instant of the last kernel the run finished.
    pub complete_ns: Option<u64>,
    /// Simulated completion instant of the fault-free reference run of the
    /// same benchmark on the same machine and config.
    pub fault_free_ns: u64,
    /// Simulated recovery latency: how much later than the fault-free
    /// reference the run completed. Only meaningful when the fault fired
    /// and the run recovered.
    pub recovery_latency_ns: Option<u64>,
}

impl FaultCell {
    /// Whether this cell fails the sweep.
    pub fn is_failure(&self) -> bool {
        !self.outcome.is_ok() || !self.deterministic
    }
}

/// Derives the per-cell fault seed from the sweep seed and the cell
/// coordinates (splitmix64 finalizer: stable across runs, well mixed).
fn plan_seed(bench_idx: u64, kind_idx: u64, seed: u64) -> u64 {
    let mut z = SWEEP_SEED
        .wrapping_add(bench_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(kind_idx.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(seed.wrapping_mul(0x1656_67B1_9E37_79F9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything one execution of a sweep cell observed, compared wholesale
/// between the two runs for the determinism check.
#[derive(Clone, Debug, PartialEq)]
struct RunProbe {
    outcome: CellOutcome,
    fired: bool,
    /// Whether any kernel's trace recorded an owner promotion.
    promoted: bool,
    fault_at_ns: Option<u64>,
    complete_ns: Option<u64>,
}

/// Simulated instant of the first fault-vocabulary event in `report`, if
/// any: the moment the injected damage became visible to the runtime.
fn first_fault_ns(report: &KernelReport) -> Option<u64> {
    report
        .trace
        .iter()
        .find(|ev| {
            matches!(
                ev.kind,
                TraceKind::TransferFault { .. }
                    | TraceKind::TransferRejected { .. }
                    | TraceKind::TransferTimeout { .. }
                    | TraceKind::DeviceLost { .. }
                    | TraceKind::NonOwnerLost { .. }
                    | TraceKind::EpTransferFault { .. }
                    | TraceKind::EpTransferRejected { .. }
                    | TraceKind::EpTransferTimeout { .. }
            )
        })
        .map(|ev| ev.at.as_nanos())
}

fn run_probe(
    machine: &MachineConfig,
    b: &BenchmarkSpec,
    plan: Option<FaultPlan>,
    base: FluidiclConfig,
) -> RunProbe {
    let n = sweep_size(b.name);
    let config = base.with_validate_protocol(true).with_faults(plan);
    let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
    let defs = (b.program)(n);
    let mut outcome = match b.run_and_validate_sized(&mut rt, n, SWEEP_SEED) {
        Ok(true) => CellOutcome::Recovered,
        Ok(false) => CellOutcome::Mismatch,
        Err(e @ (ClError::DeviceLost { .. } | ClError::Timeout { .. })) => {
            CellOutcome::TypedError(e.to_string())
        }
        Err(e) => CellOutcome::UnexpectedError(e.to_string()),
    };
    // Happens-before check over the faulted traces: a fault edge must
    // excuse exactly the transfer it damaged, nothing more, so even a
    // recovered run with a racy merge fails the cell.
    if outcome == CellOutcome::Recovered {
        'reports: for report in rt.reports() {
            let kdef = defs
                .kernel(&report.kernel)
                .expect("reported kernel is registered");
            for d in crate::race_check_report(&kdef, report) {
                if d.severity == fluidicl::LintSeverity::Error {
                    outcome = CellOutcome::UnexpectedError(format!(
                        "race in kernel `{}`: {d}",
                        report.kernel
                    ));
                    break 'reports;
                }
            }
        }
    }
    let fault_at_ns = rt.reports().iter().filter_map(first_fault_ns).min();
    let complete_ns = rt
        .reports()
        .iter()
        .flat_map(|r| r.trace.iter().map(|ev| ev.at.as_nanos()))
        .max();
    let promoted = rt.reports().iter().any(|r| {
        r.trace
            .iter()
            .any(|ev| matches!(ev.kind, TraceKind::OwnerPromoted { .. }))
    });
    RunProbe {
        outcome,
        fired: rt.fault_fired(),
        promoted,
        fault_at_ns,
        complete_ns,
    }
}

/// Simulated completion instant of a fault-free run of `b` on `machine`
/// under `base`: the reference the recovery-latency numbers are measured
/// against.
fn fault_free_complete_ns(machine: &MachineConfig, b: &BenchmarkSpec, base: FluidiclConfig) -> u64 {
    let p = run_probe(machine, b, None, base);
    assert_eq!(
        p.outcome,
        CellOutcome::Recovered,
        "{}: fault-free reference run must validate",
        b.name
    );
    p.complete_ns.expect("fault-free run completed kernels")
}

/// Runs one sweep cell against a precomputed fault-free reference
/// completion time: two executions of `bench` under `kind` with the given
/// plan seed, checking the recovery contract and determinism.
fn run_fault_cell_with_ref(
    b: &BenchmarkSpec,
    kind: FaultKind,
    seed: u64,
    plan_seed: u64,
    fault_free_ns: u64,
) -> FaultCell {
    let machine = MachineConfig::paper_testbed();
    let plan = Some(FaultPlan::new(kind, plan_seed));
    let p = run_probe(&machine, b, plan, FluidiclConfig::default());
    let again = run_probe(&machine, b, plan, FluidiclConfig::default());
    let recovery_latency_ns = (p.fired && p.outcome == CellOutcome::Recovered).then(|| {
        p.complete_ns
            .unwrap_or(fault_free_ns)
            .saturating_sub(fault_free_ns)
    });
    FaultCell {
        bench: b.name,
        kind,
        seed,
        plan_seed,
        deterministic: p == again,
        outcome: p.outcome,
        fired: p.fired,
        fault_at_ns: p.fault_at_ns,
        complete_ns: p.complete_ns,
        fault_free_ns,
        recovery_latency_ns,
    }
}

/// Runs one sweep cell: two executions of `bench` under `kind` with the
/// given plan seed, checking the recovery contract and determinism. The
/// fault-free latency reference is computed on the spot; the sweep proper
/// hoists it per benchmark instead.
pub fn run_fault_cell(b: &BenchmarkSpec, kind: FaultKind, seed: u64, plan_seed: u64) -> FaultCell {
    let ff = fault_free_complete_ns(
        &MachineConfig::paper_testbed(),
        b,
        FluidiclConfig::default(),
    );
    run_fault_cell_with_ref(b, kind, seed, plan_seed, ff)
}

/// Runs the full sweep — every benchmark × fault kind × `seeds` seed
/// indices — fanned out over the worker pool, in stable cell order.
pub fn run_fault_sweep(seeds: u64) -> Vec<FaultCell> {
    let machine = MachineConfig::paper_testbed();
    let mut units = Vec::new();
    for (bi, b) in all_benchmarks().into_iter().enumerate() {
        // One fault-free reference per benchmark: every cell of the row
        // measures its recovery latency against the same baseline.
        let ff = fault_free_complete_ns(&machine, &b, FluidiclConfig::default());
        for (ki, kind) in FaultKind::all().into_iter().enumerate() {
            for s in 0..seeds {
                units.push((b, kind, s, plan_seed(bi as u64, ki as u64, s), ff));
            }
        }
    }
    fluidicl_par::par_map(units, |(b, kind, s, ps, ff)| {
        run_fault_cell_with_ref(&b, kind, s, ps, ff)
    })
}

/// One cell of the owner-failover sweep: a three-device machine loses its
/// acting owner mid-kernel and a surviving peer GPU is promoted in its
/// place (epoch-fenced failover).
///
/// Three families ride the same harness: `owner-loss-promote` (plain
/// owner loss at the sweep's problem sizes), `owner-then-peer-cascade`
/// (the owner dies, a peer is promoted, then the subkernel-kill latch
/// takes the non-owner endpoints too), and `promote-mid-batch` (owner
/// loss under pipeline depth 4, so promotion lands while coalesced
/// batches are in flight). Every cell must recover bit-identically to the
/// sequential reference — race-checked — or surface a typed error, twice
/// over.
#[derive(Clone, Debug)]
pub struct FailoverCell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Which failover family the cell belongs to.
    pub family: &'static str,
    /// Injected fault kind.
    pub kind: FaultKind,
    /// Sweep seed index (0..seeds).
    pub seed: u64,
    /// Derived fault-plan seed the cell ran with.
    pub plan_seed: u64,
    /// Outcome of the first execution.
    pub outcome: CellOutcome,
    /// Whether the planned fault actually triggered.
    pub fired: bool,
    /// Whether an owner promotion appeared in any kernel trace.
    pub promoted: bool,
    /// Whether the second execution reproduced the first bit-for-bit.
    pub deterministic: bool,
    /// Simulated instant the first fault-vocabulary trace event fired at.
    pub fault_at_ns: Option<u64>,
    /// Simulated completion instant of the last kernel the run finished.
    pub complete_ns: Option<u64>,
    /// Fault-free reference completion for the same benchmark and config.
    pub fault_free_ns: u64,
    /// Simulated recovery latency vs the fault-free reference (fired,
    /// recovered cells only).
    pub recovery_latency_ns: Option<u64>,
}

impl FailoverCell {
    /// Whether this cell fails the sweep: anything but a deterministic
    /// bit-identical recovery or a deterministic typed error.
    pub fn is_failure(&self) -> bool {
        !self.outcome.is_ok() || !self.deterministic
    }
}

/// The three owner-failover families: (name, fault kind, plan-seed kind
/// offset, config). Offsets keep the derived plan seeds disjoint from the
/// two-device sweep's (0..7) and the N=3 non-owner sweep's (100+).
fn failover_families() -> [(&'static str, FaultKind, u64, FluidiclConfig); 3] {
    [
        (
            "owner-loss-promote",
            FaultKind::GpuLost,
            200,
            FluidiclConfig::default(),
        ),
        (
            "owner-then-peer-cascade",
            FaultKind::DoubleLoss,
            300,
            FluidiclConfig::default(),
        ),
        (
            "promote-mid-batch",
            FaultKind::GpuLost,
            400,
            FluidiclConfig::default().with_pipeline_depth(4),
        ),
    ]
}

/// Runs the owner-failover sweep: every benchmark × failover family ×
/// `seeds` seed indices on [`MachineConfig::paper_testbed_3dev`], where
/// the injected owner loss exercises peer promotion instead of the
/// two-device survivor fallback.
pub fn run_failover_sweep(seeds: u64) -> Vec<FailoverCell> {
    let machine = MachineConfig::paper_testbed_3dev();
    let mut units = Vec::new();
    for (family, kind, offset, config) in failover_families() {
        let kind_idx = FaultKind::all()
            .iter()
            .position(|k| *k == kind)
            .expect("failover kind") as u64;
        for (bi, b) in all_benchmarks().into_iter().enumerate() {
            let ff = fault_free_complete_ns(&machine, &b, config.clone());
            for s in 0..seeds {
                let ps = plan_seed(bi as u64, offset + kind_idx, s);
                units.push((family, kind, b, s, ps, config.clone(), ff));
            }
        }
    }
    fluidicl_par::par_map(units, |(family, kind, b, s, ps, config, ff)| {
        let machine = MachineConfig::paper_testbed_3dev();
        let plan = Some(FaultPlan::new(kind, ps));
        let p = run_probe(&machine, &b, plan, config.clone());
        let again = run_probe(&machine, &b, plan, config);
        let recovery_latency_ns = (p.fired && p.outcome == CellOutcome::Recovered)
            .then(|| p.complete_ns.unwrap_or(ff).saturating_sub(ff));
        FailoverCell {
            bench: b.name,
            family,
            kind,
            seed: s,
            plan_seed: ps,
            deterministic: p == again,
            outcome: p.outcome,
            fired: p.fired,
            promoted: p.promoted,
            fault_at_ns: p.fault_at_ns,
            complete_ns: p.complete_ns,
            fault_free_ns: ff,
            recovery_latency_ns,
        }
    })
}

/// One cell of the N=3 non-owner-loss sweep: a three-device machine
/// (CPU + owner GPU + peer GPU) loses a non-owner endpoint mid-kernel.
///
/// The injector's subkernel-kill trigger counts launches across *all*
/// non-owner endpoints, so across seeds the victim alternates between the
/// CPU and the peer GPU. The contract is stricter than the two-device
/// sweep's: the owner survives a non-owner loss by construction, so the
/// survivors must always finish with output bit-identical to the sequential
/// reference (and therefore to a fault-free run) — a typed error is a
/// failure here, not an accepted outcome. Recovered traces are additionally
/// happens-before checked, and every cell runs twice for determinism.
#[derive(Clone, Debug)]
pub struct NdevLossCell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Sweep seed index (0..seeds).
    pub seed: u64,
    /// Derived fault-plan seed the cell ran with.
    pub plan_seed: u64,
    /// Outcome of the first execution.
    pub outcome: CellOutcome,
    /// Whether the planned loss actually triggered.
    pub fired: bool,
    /// Whether the second execution reproduced the first bit-for-bit.
    pub deterministic: bool,
    /// Simulated instant the first fault-vocabulary trace event fired at.
    pub fault_at_ns: Option<u64>,
    /// Simulated completion instant of the last kernel the run finished.
    pub complete_ns: Option<u64>,
    /// Fault-free reference completion for the same benchmark and machine.
    pub fault_free_ns: u64,
    /// Simulated recovery latency vs the fault-free reference (fired,
    /// recovered cells only).
    pub recovery_latency_ns: Option<u64>,
}

impl NdevLossCell {
    /// Whether this cell fails the sweep (anything but a deterministic,
    /// bit-identical recovery).
    pub fn is_failure(&self) -> bool {
        self.outcome != CellOutcome::Recovered || !self.deterministic
    }
}

/// Runs the N=3 non-owner-loss sweep: every benchmark × `seeds` seed
/// indices on [`MachineConfig::paper_testbed_3dev`] under a
/// [`FaultKind::CpuLost`] plan (the subkernel-kill fault, which on a
/// three-device machine strikes whichever non-owner launch hits the
/// trigger).
pub fn run_ndev_loss_sweep(seeds: u64) -> Vec<NdevLossCell> {
    let kind_idx = FaultKind::all()
        .iter()
        .position(|k| *k == FaultKind::CpuLost)
        .expect("subkernel-kill kind") as u64;
    let machine = MachineConfig::paper_testbed_3dev();
    let mut units = Vec::new();
    for (bi, b) in all_benchmarks().into_iter().enumerate() {
        let ff = fault_free_complete_ns(&machine, &b, FluidiclConfig::default());
        for s in 0..seeds {
            // Offset the kind coordinate so these cells draw plan seeds
            // disjoint from the two-device sweep's.
            units.push((b, s, plan_seed(bi as u64, 100 + kind_idx, s), ff));
        }
    }
    fluidicl_par::par_map(units, |(b, s, ps, ff)| {
        let machine = MachineConfig::paper_testbed_3dev();
        let plan = Some(FaultPlan::new(FaultKind::CpuLost, ps));
        let p = run_probe(&machine, &b, plan, FluidiclConfig::default());
        let again = run_probe(&machine, &b, plan, FluidiclConfig::default());
        let recovery_latency_ns = (p.fired && p.outcome == CellOutcome::Recovered)
            .then(|| p.complete_ns.unwrap_or(ff).saturating_sub(ff));
        NdevLossCell {
            bench: b.name,
            seed: s,
            plan_seed: ps,
            deterministic: p == again,
            outcome: p.outcome,
            fired: p.fired,
            fault_at_ns: p.fault_at_ns,
            complete_ns: p.complete_ns,
            fault_free_ns: ff,
            recovery_latency_ns,
        }
    })
}

/// One row of the fault-aware chunk-shrink comparison: the same benchmark
/// under the same `TransferTransient` fault plan, once with
/// `shrink_chunk_on_retry` on (the default) and once with it off.
///
/// With the shrink enabled the controller halves the CPU chunk as soon as
/// a transfer needs a retry, so every subkernel launched after the fault
/// is smaller: its results reach the GPU in finer batches, and the work
/// stranded un-acknowledged on the flaky link at any instant — the work a
/// later watchdog abandonment would lose — shrinks with it. `at_risk_*`
/// measures exactly that: the largest subkernel launched after the first
/// transfer fault (in work-groups). The merged counts are reported for
/// context; the *contract* is that the shrink never enlarges the at-risk
/// window and keeps strictly more CPU work mergeable somewhere in the
/// sweep.
#[derive(Clone, Debug)]
pub struct ShrinkCell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Derived fault-plan seed the cell ran with.
    pub plan_seed: u64,
    /// Whether the transient fault actually fired.
    pub fired: bool,
    /// Largest post-fault subkernel (work-groups) with the shrink enabled.
    pub at_risk_with_shrink: u64,
    /// Largest post-fault subkernel (work-groups) with the shrink disabled.
    pub at_risk_without_shrink: u64,
    /// CPU work-groups merged with shrink-on-retry enabled.
    pub merged_with_shrink: u64,
    /// CPU work-groups merged with shrink-on-retry disabled.
    pub merged_without_shrink: u64,
}

impl ShrinkCell {
    /// Whether this cell violates the shrink contract: halving the chunk
    /// on retry must never launch a *larger* post-fault subkernel.
    pub fn is_failure(&self) -> bool {
        self.at_risk_with_shrink > self.at_risk_without_shrink
    }

    /// Whether the shrink strictly reduced the post-fault at-risk window.
    pub fn improved(&self) -> bool {
        self.at_risk_with_shrink < self.at_risk_without_shrink
    }
}

/// Runs one benchmark under a transient-transfer plan and extracts the
/// merged work-group total plus the largest subkernel launched after the
/// first transfer fault (0 if no subkernel starts after the fault).
fn transient_run(b: &BenchmarkSpec, plan_seed: u64, shrink: bool) -> (u64, u64, bool) {
    let n = sweep_size(b.name);
    let config = FluidiclConfig::default()
        .with_validate_protocol(true)
        .with_recovery(RecoveryPolicy::default().with_shrink_chunk_on_retry(shrink))
        .with_faults(Some(FaultPlan::new(
            FaultKind::TransferTransient,
            plan_seed,
        )));
    let mut rt = Fluidicl::new(MachineConfig::paper_testbed(), config, (b.program)(n));
    let ok = b
        .run_and_validate_sized(&mut rt, n, SWEEP_SEED)
        .expect("transient transfer faults are always recoverable");
    assert!(
        ok,
        "{}: transient-fault run diverged from reference",
        b.name
    );
    let merged = rt.reports().iter().map(|r| r.cpu_merged_wgs).sum();
    let mut at_risk = 0u64;
    for r in rt.reports() {
        let mut fault_at = None;
        for ev in &r.trace {
            match ev.kind {
                TraceKind::TransferFault { .. } if fault_at.is_none() => fault_at = Some(ev.at),
                TraceKind::CpuSubkernelStart { from, to, .. }
                    if fault_at.is_some_and(|f| ev.at >= f) =>
                {
                    at_risk = at_risk.max(to.saturating_sub(from));
                }
                _ => {}
            }
        }
    }
    (merged, at_risk, rt.fault_fired())
}

/// Runs the chunk-shrink comparison over every benchmark × `seeds` seed
/// indices (reusing the sweep's per-cell seed derivation so the transient
/// fault lands at the same point in both runs).
pub fn run_shrink_comparison(seeds: u64) -> Vec<ShrinkCell> {
    let kind_idx = FaultKind::all()
        .iter()
        .position(|k| *k == FaultKind::TransferTransient)
        .expect("transient kind") as u64;
    let mut units = Vec::new();
    for (bi, b) in all_benchmarks().into_iter().enumerate() {
        for s in 0..seeds {
            units.push((b, plan_seed(bi as u64, kind_idx, s)));
        }
    }
    fluidicl_par::par_map(units, |(b, ps)| {
        let (merged_on, risk_on, fired_on) = transient_run(&b, ps, true);
        let (merged_off, risk_off, fired_off) = transient_run(&b, ps, false);
        ShrinkCell {
            bench: b.name,
            plan_seed: ps,
            fired: fired_on || fired_off,
            at_risk_with_shrink: risk_on,
            at_risk_without_shrink: risk_off,
            merged_with_shrink: merged_on,
            merged_without_shrink: merged_off,
        }
    })
}

/// Minimal JSON string escaping for outcome details.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders an `Option<u64>` as a JSON number or `null`.
fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// The shared latency tail of every cell row: when the fault fired and
/// when the run completed relative to its fault-free reference.
fn latency_fields(
    fault_at_ns: Option<u64>,
    complete_ns: Option<u64>,
    fault_free_ns: u64,
    recovery_latency_ns: Option<u64>,
) -> String {
    format!(
        ", \"fault_at_ns\": {}, \"complete_ns\": {}, \"fault_free_ns\": {fault_free_ns}, \
         \"recovery_latency_ns\": {}",
        opt(fault_at_ns),
        opt(complete_ns),
        opt(recovery_latency_ns)
    )
}

/// Renders the sweep as hand-written JSON, one cell per line (the same
/// diff-friendly style as `BENCH_repro.json`): the CI artifact uploaded
/// next to the perf numbers.
pub fn render_faults_json(
    cells: &[FaultCell],
    ndev: &[NdevLossCell],
    failover: &[FailoverCell],
    shrink: &[ShrinkCell],
    seeds: u64,
) -> String {
    let recovered = cells
        .iter()
        .filter(|c| c.outcome == CellOutcome::Recovered)
        .count();
    let typed = cells
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::TypedError(_)))
        .count();
    let fired = cells.iter().filter(|c| c.fired).count();
    let failures = cells.iter().filter(|c| c.is_failure()).count();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"seeds\": {seeds},\n"));
    s.push_str(&format!("  \"cells\": {},\n", cells.len()));
    s.push_str(&format!("  \"fired\": {fired},\n"));
    s.push_str(&format!("  \"recovered\": {recovered},\n"));
    s.push_str(&format!("  \"typed_errors\": {typed},\n"));
    s.push_str(&format!("  \"failures\": {failures},\n"));
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let detail = match &c.outcome {
            CellOutcome::TypedError(d) | CellOutcome::UnexpectedError(d) => {
                format!(", \"detail\": \"{}\"", esc(d))
            }
            _ => String::new(),
        };
        let latency = latency_fields(
            c.fault_at_ns,
            c.complete_ns,
            c.fault_free_ns,
            c.recovery_latency_ns,
        );
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"kind\": \"{}\", \"seed\": {}, \"plan_seed\": {}, \
             \"outcome\": \"{}\", \"fired\": {}, \"deterministic\": {}{latency}{detail}}}{comma}\n",
            c.bench,
            c.kind.name(),
            c.seed,
            c.plan_seed,
            c.outcome.label(),
            c.fired,
            c.deterministic
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"ndev_loss\": [\n");
    for (i, c) in ndev.iter().enumerate() {
        let comma = if i + 1 < ndev.len() { "," } else { "" };
        let detail = match &c.outcome {
            CellOutcome::TypedError(d) | CellOutcome::UnexpectedError(d) => {
                format!(", \"detail\": \"{}\"", esc(d))
            }
            _ => String::new(),
        };
        let latency = latency_fields(
            c.fault_at_ns,
            c.complete_ns,
            c.fault_free_ns,
            c.recovery_latency_ns,
        );
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"machine\": \"paper-testbed-3dev\", \"seed\": {}, \
             \"plan_seed\": {}, \"outcome\": \"{}\", \"fired\": {}, \
             \"deterministic\": {}{latency}{detail}}}{comma}\n",
            c.bench,
            c.seed,
            c.plan_seed,
            c.outcome.label(),
            c.fired,
            c.deterministic
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"owner_failover\": [\n");
    for (i, c) in failover.iter().enumerate() {
        let comma = if i + 1 < failover.len() { "," } else { "" };
        let detail = match &c.outcome {
            CellOutcome::TypedError(d) | CellOutcome::UnexpectedError(d) => {
                format!(", \"detail\": \"{}\"", esc(d))
            }
            _ => String::new(),
        };
        let latency = latency_fields(
            c.fault_at_ns,
            c.complete_ns,
            c.fault_free_ns,
            c.recovery_latency_ns,
        );
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"family\": \"{}\", \"kind\": \"{}\", \
             \"machine\": \"paper-testbed-3dev\", \"seed\": {}, \"plan_seed\": {}, \
             \"outcome\": \"{}\", \"fired\": {}, \"promoted\": {}, \
             \"deterministic\": {}{latency}{detail}}}{comma}\n",
            c.bench,
            c.family,
            c.kind.name(),
            c.seed,
            c.plan_seed,
            c.outcome.label(),
            c.fired,
            c.promoted,
            c.deterministic
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"shrink_on_retry\": [\n");
    for (i, c) in shrink.iter().enumerate() {
        let comma = if i + 1 < shrink.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"plan_seed\": {}, \"fired\": {}, \
             \"at_risk_with_shrink\": {}, \"at_risk_without_shrink\": {}, \
             \"merged_with_shrink\": {}, \"merged_without_shrink\": {}}}{comma}\n",
            c.bench,
            c.plan_seed,
            c.fired,
            c.at_risk_with_shrink,
            c.at_risk_without_shrink,
            c.merged_with_shrink,
            c.merged_without_shrink
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_seed_is_stable_and_distinct() {
        assert_eq!(plan_seed(0, 0, 0), plan_seed(0, 0, 0));
        let seeds: Vec<u64> = (0..4)
            .flat_map(|b| (0..7).flat_map(move |k| (0..4).map(move |s| plan_seed(b, k, s))))
            .collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len(), "cell seeds must not collide");
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(esc("a \"b\" \\c"), "a \\\"b\\\" \\\\c");
    }
}
