//! Vector-clock happens-before race detector over protocol traces.
//!
//! The protocol linter ([`fluidicl::lint_trace`]) checks the *shape* of a
//! co-executed kernel's event log — watermark monotonicity, queue order,
//! contiguity, coverage in work-groups. This module checks the *data-flow*
//! underneath it at element granularity: every merge and every final read
//! of a buffer range must be happens-before-ordered after the writes that
//! produced it, and no two contributions consumed by one merge may write
//! overlapping elements.
//!
//! The detector is two layers:
//!
//! * a generic **happens-before engine** ([`check_hb`]) over N endpoints:
//!   each endpoint carries a [`VClock`]; program order ticks it, message
//!   delivery ([`HbOp::Send`]/[`HbOp::Recv`]) joins the sender's clock into
//!   the receiver's. The engine knows nothing about CPUs, GPUs or the
//!   FluidiCL protocol — only writes, messages, merges and reads over
//!   per-endpoint buffer copies;
//! * a **trace lowering** ([`race_check_report`]) that maps a
//!   [`KernelReport`]'s trace onto the engine: GPU waves and CPU subkernels
//!   become writes (their element footprints computed symbolically from
//!   the kernel's [`AccessPattern`](fluidicl_vcl::AccessPattern)
//!   declarations via [`KernelDef::write_footprints`] — no replay), data
//!   sends and status arrivals become the message edges of the in-order hd
//!   queue, fault events void exactly the transfer they damaged, and the
//!   diff-merge and the finisher's final read become [`HbOp::Merge`] /
//!   [`HbOp::Read`] checks.
//!
//! Writes land in per-endpoint device copies, so duplicated work — the GPU
//! recomputing a range the CPU also computed, which the paper's protocol
//! permits by design (§4.2) — is *not* a race: the merge owner's local
//! writes are the base the merge overlays, and only contributions shipped
//! by *other* endpoints must be disjoint and ordered.

use std::collections::{BTreeMap, HashMap, VecDeque};

use fluidicl::{Finisher, KernelReport, LaunchMeta, LintDiagnostic, TraceKind};
use fluidicl_vcl::{DeviceKind, DirtyRanges, KernelDef};

/// Engine endpoint index of the merge owner (the GPU lane of a FluidiCL
/// trace): it receives contributions and runs the diff-merge.
pub const OWNER: usize = 0;
/// Engine endpoint index of the contributor (the CPU lane of a FluidiCL
/// trace): it computes subkernels and ships them to the owner.
pub const CONTRIB: usize = 1;

/// A vector clock over a fixed set of endpoints.
///
/// `a.leq(b)` is the happens-before relation's reflexive closure: event A
/// (with clock `a`) happened before or is event B (with clock `b`). Two
/// clocks with neither `leq` the other belong to concurrent events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock over `endpoints` components.
    pub fn new(endpoints: usize) -> Self {
        VClock(vec![0; endpoints])
    }

    /// Number of endpoint components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The component of `endpoint`.
    pub fn get(&self, endpoint: usize) -> u64 {
        self.0[endpoint]
    }

    /// Advances `endpoint`'s own component (a program-order step).
    pub fn tick(&mut self, endpoint: usize) {
        self.0[endpoint] += 1;
    }

    /// Component-wise maximum: the clock after receiving a message sent at
    /// `other`.
    #[must_use]
    pub fn join(&self, other: &Self) -> Self {
        VClock(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| (*a).max(*b))
                .collect(),
        )
    }

    /// Component-wise `≤`: the event with this clock happened before (or
    /// is) the event with `other`'s clock.
    pub fn leq(&self, other: &Self) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Strict happens-before: `leq` and not equal.
    pub fn lt(&self, other: &Self) -> bool {
        self.leq(other) && self != other
    }

    /// Neither happened before the other.
    pub fn concurrent(&self, other: &Self) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

/// One operation of a happens-before event stream. Every `ranges` vector
/// holds one [`DirtyRanges`] per checked buffer, in a fixed order shared
/// by the whole stream.
#[derive(Clone, Debug)]
pub enum HbOp {
    /// The endpoint wrote `ranges` into its local buffer copies.
    Write {
        /// Element ranges written, per buffer.
        ranges: Vec<DirtyRanges>,
    },
    /// The endpoint shipped the current content of `ranges` as message
    /// `msg` (all its program-order-prior writes intersecting the ranges
    /// travel with it).
    Send {
        /// Stream-unique message id pairing this send with its receive.
        msg: u64,
        /// Element ranges shipped, per buffer.
        ranges: Vec<DirtyRanges>,
    },
    /// The endpoint received message `msg`: the sender's clock joins the
    /// receiver's, and the shipped ranges become an arrival available to a
    /// later [`HbOp::Merge`].
    Recv {
        /// Message id of the matching [`HbOp::Send`].
        msg: u64,
    },
    /// The endpoint merged every arrived contribution overlapping `ranges`
    /// into its local copies. Checked: the region must be covered by
    /// arrived contributions, every contributing write must be
    /// happens-before the merge, and contributions must not overlap each
    /// other.
    Merge {
        /// Element ranges the merge must establish, per buffer.
        ranges: Vec<DirtyRanges>,
    },
    /// The endpoint read `ranges` from its local copies (e.g. the final
    /// device-to-host transfer). Checked: the region must be covered by
    /// local writes and merged contributions.
    Read {
        /// Element ranges read, per buffer.
        ranges: Vec<DirtyRanges>,
    },
}

/// One event of a happens-before stream: an operation at an endpoint, with
/// a label used in diagnostics.
#[derive(Clone, Debug)]
pub struct HbEvent {
    /// Endpoint executing the operation (`0..endpoints`).
    pub endpoint: usize,
    /// Human-readable description used in findings (e.g. `subkernel
    /// 24..32`).
    pub label: String,
    /// The operation.
    pub op: HbOp,
}

impl HbEvent {
    /// Convenience constructor.
    pub fn new(endpoint: usize, label: impl Into<String>, op: HbOp) -> Self {
        HbEvent {
            endpoint,
            label: label.into(),
            op,
        }
    }
}

fn fmt_ranges(r: &DirtyRanges) -> String {
    let parts: Vec<String> = r
        .as_slice()
        .iter()
        .take(4)
        .map(|(s, e)| format!("[{s}, {e})"))
        .collect();
    let ell = if r.range_count() > 4 { ", …" } else { "" };
    format!("{}{ell}", parts.join(", "))
}

struct WriteRec {
    endpoint: usize,
    clock: VClock,
    ranges: Vec<DirtyRanges>,
    label: String,
}

struct SendRec {
    from: usize,
    clock: VClock,
    ranges: Vec<DirtyRanges>,
    label: String,
    /// Indices into the write log of the sender's prior writes that
    /// intersect the shipped ranges — the data the message carries.
    writes: Vec<usize>,
    received: bool,
}

/// Checks a happens-before event stream over `endpoints` endpoints and
/// `buffers` buffers. Returns one diagnostic per violation; an empty
/// vector means every merge and read is properly ordered and covered.
///
/// Rules (all error severity):
///
/// * `race-recv-without-send` — a [`HbOp::Recv`] names a message never
///   sent (or already consumed);
/// * `race-merge-order` — a merge consumed a region whose contribution
///   exists in the stream but is not happens-before the merge (the merge
///   ran before the data arrived);
/// * `race-stale-read` — a merged or read region is not covered by any
///   write at all;
/// * `race-overlapping-writes` — two contributions consumed by the same
///   merge wrote overlapping elements (ordered by happens-before, so the
///   merge result silently depends on apply order);
/// * `race-unordered-writes` — as above, but the two contributing sends
///   are concurrent: a true data race.
pub fn check_hb(endpoints: usize, buffers: usize, events: &[HbEvent]) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    let mut clocks: Vec<VClock> = (0..endpoints).map(|_| VClock::new(endpoints)).collect();
    let mut writes: Vec<WriteRec> = Vec::new();
    let mut sends: HashMap<u64, SendRec> = HashMap::new();
    // Per endpoint: message ids received, in receive order.
    let mut arrivals: Vec<Vec<u64>> = vec![Vec::new(); endpoints];
    // Per endpoint per buffer: elements written locally / merged in.
    let mut local: Vec<Vec<DirtyRanges>> = (0..endpoints)
        .map(|_| vec![DirtyRanges::empty(); buffers])
        .collect();
    let mut merged = local.clone();

    for ev in events {
        let ep = ev.endpoint;
        clocks[ep].tick(ep);
        match &ev.op {
            HbOp::Write { ranges } => {
                for (b, r) in ranges.iter().enumerate() {
                    local[ep][b] = local[ep][b].union(r);
                }
                writes.push(WriteRec {
                    endpoint: ep,
                    clock: clocks[ep].clone(),
                    ranges: ranges.clone(),
                    label: ev.label.clone(),
                });
            }
            HbOp::Send { msg, ranges } => {
                let carried: Vec<usize> = writes
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| {
                        w.endpoint == ep
                            && w.ranges
                                .iter()
                                .zip(ranges)
                                .any(|(wr, sr)| !wr.intersect(sr).is_empty())
                    })
                    .map(|(i, _)| i)
                    .collect();
                sends.insert(
                    *msg,
                    SendRec {
                        from: ep,
                        clock: clocks[ep].clone(),
                        ranges: ranges.clone(),
                        label: ev.label.clone(),
                        writes: carried,
                        received: false,
                    },
                );
            }
            HbOp::Recv { msg } => match sends.get_mut(msg) {
                Some(s) if !s.received && s.from != ep => {
                    s.received = true;
                    let joined = clocks[ep].join(&s.clock);
                    clocks[ep] = joined;
                    arrivals[ep].push(*msg);
                }
                _ => out.push(LintDiagnostic::error(
                    "race-recv-without-send",
                    format!(
                        "endpoint {ep} received `{}` (msg {msg}) with no prior matching send",
                        ev.label
                    ),
                )),
            },
            HbOp::Merge { ranges } => {
                let merge_clock = clocks[ep].clone();
                // Contributions: arrived sends from other endpoints,
                // clipped to the merge region.
                let contribs: Vec<(&SendRec, Vec<DirtyRanges>)> = arrivals[ep]
                    .iter()
                    .filter_map(|m| sends.get(m))
                    .filter(|s| s.from != ep)
                    .map(|s| {
                        let clipped: Vec<DirtyRanges> = s
                            .ranges
                            .iter()
                            .zip(ranges)
                            .map(|(sr, mr)| sr.intersect(mr))
                            .collect();
                        (s, clipped)
                    })
                    .filter(|(_, clipped)| clipped.iter().any(|r| !r.is_empty()))
                    .collect();
                // Every contributing write must be happens-before the
                // merge (the vector clocks are load-bearing here: a recv
                // processed at this endpoint joined the send's clock, so a
                // violation means the lowering fed us a merge that ran
                // before its data arrived).
                for (s, _) in &contribs {
                    for &wi in &s.writes {
                        let w = &writes[wi];
                        if !w.clock.leq(&merge_clock) {
                            out.push(LintDiagnostic::error(
                                "race-merge-order",
                                format!(
                                    "`{}` merged `{}` before it happened-before the merge",
                                    ev.label, w.label
                                ),
                            ));
                        }
                    }
                }
                // Contributions must be pairwise disjoint: the merge
                // applies each on top of the owner copy, so overlap makes
                // the result depend on apply order.
                for i in 0..contribs.len() {
                    for j in (i + 1)..contribs.len() {
                        let (si, ci) = &contribs[i];
                        let (sj, cj) = &contribs[j];
                        for b in 0..buffers {
                            let ov = ci[b].intersect(&cj[b]);
                            if ov.is_empty() {
                                continue;
                            }
                            let rule = if si.clock.concurrent(&sj.clock) {
                                "race-unordered-writes"
                            } else {
                                "race-overlapping-writes"
                            };
                            out.push(LintDiagnostic::error(
                                rule,
                                format!(
                                    "`{}` consumed contributions `{}` and `{}` both writing \
                                     buffer {b} elements {}",
                                    ev.label,
                                    si.label,
                                    sj.label,
                                    fmt_ranges(&ov)
                                ),
                            ));
                        }
                    }
                }
                // Coverage: the merge region must be covered by arrived
                // contributions. An uncovered region overlapping a send
                // that exists but has not arrived is a merge-order
                // violation; a region no send covers at all is stale.
                for b in 0..buffers {
                    let mut covered = DirtyRanges::empty();
                    for (_, c) in &contribs {
                        covered = covered.union(&c[b]);
                    }
                    let uncovered = ranges[b].subtract(&covered);
                    if uncovered.is_empty() {
                        continue;
                    }
                    let mut pending = DirtyRanges::empty();
                    for s in sends.values() {
                        if s.from != ep && !s.received {
                            pending = pending.union(&s.ranges[b].intersect(&uncovered));
                        }
                    }
                    if !pending.is_empty() {
                        out.push(LintDiagnostic::error(
                            "race-merge-order",
                            format!(
                                "`{}` covers buffer {b} elements {} whose contribution had \
                                 not arrived yet",
                                ev.label,
                                fmt_ranges(&pending)
                            ),
                        ));
                    }
                    let stale = uncovered.subtract(&pending);
                    if !stale.is_empty() {
                        out.push(LintDiagnostic::error(
                            "race-stale-read",
                            format!(
                                "`{}` covers buffer {b} elements {} that no contribution wrote",
                                ev.label,
                                fmt_ranges(&stale)
                            ),
                        ));
                    }
                }
                for (b, r) in ranges.iter().enumerate() {
                    merged[ep][b] = merged[ep][b].union(r);
                }
            }
            HbOp::Read { ranges } => {
                for (b, r) in ranges.iter().enumerate() {
                    let valid = local[ep][b].union(&merged[ep][b]);
                    let stale = r.subtract(&valid);
                    if !stale.is_empty() {
                        out.push(LintDiagnostic::error(
                            "race-stale-read",
                            format!(
                                "`{}` reads buffer {b} elements {} never written or merged \
                                 at endpoint {ep}",
                                ev.label,
                                fmt_ranges(&stale)
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Lowers a co-executed kernel's trace onto the happens-before engine and
/// checks it. Returns the engine's findings; an empty vector means every
/// merge and final read is ordered after the writes that produced it and
/// no merged contributions overlap.
///
/// Requires the kernel to declare an
/// [`AccessPattern`](fluidicl_vcl::AccessPattern) on every output argument
/// (a warning finding is returned otherwise) and the report to carry
/// [`LaunchMeta`] (hand-constructed reports without it are skipped
/// silently — the runtime always fills it).
pub fn race_check_report(kernel: &KernelDef, report: &KernelReport) -> Vec<LintDiagnostic> {
    let Some(meta) = &report.launch_meta else {
        return Vec::new();
    };
    if !kernel.has_write_footprints() {
        return vec![LintDiagnostic::warning(
            "race-no-footprints",
            format!(
                "kernel `{}` lacks an AccessPattern on some output argument; \
                 happens-before checking skipped",
                kernel.name()
            ),
        )];
    }
    let events = lower_trace(kernel, meta, report);
    // Legacy two-device traces use endpoints {OWNER, CONTRIB}; an N-device
    // trace adds one engine endpoint per peer GPU (ep `dev` lowers to
    // engine endpoint `dev + 1`, so ep0 — the CPU — stays CONTRIB).
    let endpoints = 2 + report
        .trace
        .iter()
        .filter_map(|e| ep_dev(&e.kind))
        .max()
        .map_or(0, |d| d as usize);
    check_hb(endpoints, meta.out_lens.len(), &events)
}

/// The endpoint index of a multi-device trace event, `None` for the legacy
/// two-device vocabulary. Any `Some` in a trace marks it as multi-device.
fn ep_dev(kind: &TraceKind) -> Option<u32> {
    match *kind {
        TraceKind::EpSubkernelStart { dev, .. }
        | TraceKind::EpSubkernelDone { dev, .. }
        | TraceKind::EpSend { dev, .. }
        | TraceKind::EpStatus { dev, .. }
        | TraceKind::EpTransferFault { dev, .. }
        | TraceKind::EpTransferRejected { dev, .. }
        | TraceKind::EpTransferTimeout { dev, .. }
        | TraceKind::NonOwnerLost { dev }
        | TraceKind::OwnerPromoted { dev, .. }
        | TraceKind::EpochRejected { dev, .. }
        | TraceKind::EpDegradedRun { dev, .. }
        | TraceKind::GraphRun { dev, .. } => Some(dev),
        _ => None,
    }
}

fn endpoint_of_device(d: DeviceKind) -> usize {
    match d {
        DeviceKind::Gpu => OWNER,
        DeviceKind::Cpu => CONTRIB,
    }
}

fn endpoint_of_finisher(f: Finisher) -> usize {
    match f {
        Finisher::Gpu => OWNER,
        Finisher::Cpu => CONTRIB,
    }
}

/// Maps a protocol trace onto [`HbEvent`]s (see the module docs for the
/// event → edge table, mirrored in DESIGN.md §12).
fn lower_trace(kernel: &KernelDef, meta: &LaunchMeta, report: &KernelReport) -> Vec<HbEvent> {
    let total = meta.ndrange.num_groups();
    let fp = |from: u64, to: u64| -> Vec<DirtyRanges> {
        kernel
            .write_footprints(&meta.ndrange, &meta.scalars, &meta.out_lens, from, to)
            .expect("checked by has_write_footprints")
    };
    // The merge covers everything above the *final* watermark — the lowest
    // status boundary that ever arrived (paper §4.3).
    let final_wm = report
        .trace
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::StatusArrived { boundary } => Some(boundary),
            _ => None,
        })
        .min()
        .unwrap_or(total);
    let union_fp = |a: Vec<DirtyRanges>, b: &[DirtyRanges]| -> Vec<DirtyRanges> {
        a.iter().zip(b).map(|(x, y)| x.union(y)).collect()
    };

    // `Option` slots so a voided (faulted) send can be removed after the
    // fact: a transfer that never delivered carries no edge.
    let mut events: Vec<Option<HbEvent>> = Vec::new();
    // Completed-but-unshipped subkernels per non-owner endpoint, oldest
    // first (legacy CPU events use endpoint 0).
    let mut completed: HashMap<u32, VecDeque<(u64, u64)>> = HashMap::new();
    // In-flight sends of each endpoint's in-order upstream queue: (event
    // slot, boundary, message id, shipped footprints). The k-th status from
    // an endpoint acknowledges its k-th un-voided send.
    #[allow(clippy::type_complexity)]
    let mut fifo: HashMap<u32, VecDeque<(usize, u64, u64, Vec<DirtyRanges>)>> = HashMap::new();
    // Shipped footprints by (endpoint, boundary), so a faulted transfer's
    // re-send (same batch, new attempt) reuses the recorded ranges.
    let mut sent_ranges: HashMap<(u32, u64), Vec<DirtyRanges>> = HashMap::new();
    // Union of footprints whose status arrived at the owner — what a
    // multi-device merge covers (claim islands below the watermark merge
    // too, unlike the legacy suffix-only merge).
    let mut delivered: Vec<DirtyRanges> = vec![DirtyRanges::empty(); meta.out_lens.len()];
    // Accepted sends per endpoint: (send event slot, shipped footprints).
    // Owner failover rolls the promoted endpoint's prior contributions
    // back (its ranges return to the frontier and a survivor re-ships
    // them), so its accepted sends are voided at promotion and
    // `delivered` is rebuilt from the survivors' alone.
    #[allow(clippy::type_complexity)]
    let mut accepted: BTreeMap<u32, Vec<(usize, Vec<DirtyRanges>)>> = BTreeMap::new();
    // Cumulative writes per peer-GPU endpoint plus the set of lost
    // endpoints, for the host-side memory fold after an owner-GPU loss
    // (BTreeMap so the synthesized fold messages are deterministic).
    let mut peer_written: BTreeMap<u32, Vec<DirtyRanges>> = BTreeMap::new();
    let mut lost_devs: Vec<u32> = Vec::new();
    // A peer-degraded run reads its result at the surviving peer's
    // endpoint, not at the (dead) owner.
    let mut degraded_peer: Option<u32> = None;
    let multi = report.trace.iter().any(|e| ep_dev(&e.kind).is_some());
    let mut next_msg = 0u64;

    for ev in &report.trace {
        match &ev.kind {
            TraceKind::GpuWaveDone {
                from, executed_to, ..
            } if executed_to > from => {
                events.push(Some(HbEvent::new(
                    OWNER,
                    format!("wave {from}..{executed_to}"),
                    HbOp::Write {
                        ranges: fp(*from, *executed_to),
                    },
                )));
            }
            TraceKind::CpuSubkernelDone { from, to } => {
                events.push(Some(HbEvent::new(
                    CONTRIB,
                    format!("subkernel {from}..{to}"),
                    HbOp::Write {
                        ranges: fp(*from, *to),
                    },
                )));
                completed.entry(0).or_default().push_back((*from, *to));
            }
            TraceKind::HdEnqueued { boundary, .. } => {
                let q = completed.entry(0).or_default();
                let ranges = if let Some(pos) = q.iter().position(|(f, _)| f == boundary) {
                    let (f, t) = q.remove(pos).expect("position exists");
                    fp(f, t)
                } else if let Some(r) = sent_ranges.get(&(0, *boundary)) {
                    // Re-send of a faulted batch: same data, new attempt.
                    r.clone()
                } else {
                    // Malformed trace (the linter flags the shape); ship
                    // nothing so coverage checks surface the damage.
                    vec![DirtyRanges::empty(); meta.out_lens.len()]
                };
                sent_ranges.insert((0, *boundary), ranges.clone());
                let slot = events.len();
                events.push(Some(HbEvent::new(
                    CONTRIB,
                    format!("send boundary {boundary}"),
                    HbOp::Send {
                        msg: next_msg,
                        ranges: ranges.clone(),
                    },
                )));
                fifo.entry(0)
                    .or_default()
                    .push_back((slot, *boundary, next_msg, ranges));
                next_msg += 1;
            }
            TraceKind::CoalescedSend {
                boundary,
                subkernels,
                ..
            } => {
                let q = completed.entry(0).or_default();
                let mut ranges = vec![DirtyRanges::empty(); meta.out_lens.len()];
                if q.len() >= *subkernels as usize
                    && q.iter().take(*subkernels as usize).map(|(f, _)| *f).min() == Some(*boundary)
                {
                    for _ in 0..*subkernels {
                        let (f, t) = q.pop_front().expect("length checked");
                        ranges = union_fp(ranges, &fp(f, t));
                    }
                } else if let Some(r) = sent_ranges.get(&(0, *boundary)) {
                    ranges = r.clone();
                }
                sent_ranges.insert((0, *boundary), ranges.clone());
                let slot = events.len();
                events.push(Some(HbEvent::new(
                    CONTRIB,
                    format!("coalesced send boundary {boundary}"),
                    HbOp::Send {
                        msg: next_msg,
                        ranges: ranges.clone(),
                    },
                )));
                fifo.entry(0)
                    .or_default()
                    .push_back((slot, *boundary, next_msg, ranges));
                next_msg += 1;
            }
            TraceKind::TransferFault { boundary, .. }
            | TraceKind::TransferRejected { boundary }
            | TraceKind::TransferTimeout { boundary } => {
                // The damaged transfer never delivered: void its send so it
                // carries no edge (and no longer occupies the ack queue).
                // Faults excuse exactly their own damage — nothing else.
                let q = fifo.entry(0).or_default();
                if let Some(pos) = q.iter().position(|(_, b, _, _)| b == boundary) {
                    let (slot, ..) = q.remove(pos).expect("position exists");
                    events[slot] = None;
                }
            }
            TraceKind::StatusArrived { .. } => {
                // In-order queue: the status acknowledges the oldest
                // un-acked send, whatever boundary it claims (a forged
                // boundary shows up as a stale or premature merge).
                let msg = fifo
                    .entry(0)
                    .or_default()
                    .pop_front()
                    .map(|(_, _, m, _)| m)
                    .unwrap_or_else(|| {
                        let m = next_msg;
                        next_msg += 1;
                        m
                    });
                events.push(Some(HbEvent::new(OWNER, "status ack", HbOp::Recv { msg })));
            }
            TraceKind::EpSubkernelDone { dev, from, to } => {
                let ranges = fp(*from, *to);
                if *dev > 0 {
                    let w = peer_written
                        .entry(*dev)
                        .or_insert_with(|| vec![DirtyRanges::empty(); meta.out_lens.len()]);
                    *w = union_fp(w.clone(), &ranges);
                }
                events.push(Some(HbEvent::new(
                    *dev as usize + 1,
                    format!("ep{dev} subkernel {from}..{to}"),
                    HbOp::Write { ranges },
                )));
                completed.entry(*dev).or_default().push_back((*from, *to));
            }
            TraceKind::EpSend {
                dev,
                boundary,
                subkernels,
                ..
            } => {
                // One endpoint's plain and coalesced sends share a shape:
                // the batch is that endpoint's oldest `subkernels` completed
                // ranges, whose minimum `from` must be the boundary.
                let q = completed.entry(*dev).or_default();
                let mut ranges = vec![DirtyRanges::empty(); meta.out_lens.len()];
                if q.len() >= *subkernels as usize
                    && q.iter().take(*subkernels as usize).map(|(f, _)| *f).min() == Some(*boundary)
                {
                    for _ in 0..*subkernels {
                        let (f, t) = q.pop_front().expect("length checked");
                        ranges = union_fp(ranges, &fp(f, t));
                    }
                } else if let Some(r) = sent_ranges.get(&(*dev, *boundary)) {
                    ranges = r.clone();
                }
                sent_ranges.insert((*dev, *boundary), ranges.clone());
                let slot = events.len();
                events.push(Some(HbEvent::new(
                    *dev as usize + 1,
                    format!("ep{dev} send boundary {boundary}"),
                    HbOp::Send {
                        msg: next_msg,
                        ranges: ranges.clone(),
                    },
                )));
                fifo.entry(*dev)
                    .or_default()
                    .push_back((slot, *boundary, next_msg, ranges));
                next_msg += 1;
            }
            TraceKind::EpTransferFault { dev, boundary, .. }
            | TraceKind::EpTransferRejected { dev, boundary }
            | TraceKind::EpTransferTimeout { dev, boundary }
            | TraceKind::EpochRejected { dev, boundary } => {
                // Per-endpoint queues: a fault voids a send on exactly the
                // endpoint it damaged. A stale-epoch rejection is the same
                // edge-wise — the send delivered but was never applied, so
                // it carries no happens-before edge and no data.
                let q = fifo.entry(*dev).or_default();
                if let Some(pos) = q.iter().position(|(_, b, _, _)| b == boundary) {
                    let (slot, ..) = q.remove(pos).expect("position exists");
                    events[slot] = None;
                }
            }
            TraceKind::EpStatus { dev, .. } => {
                let (msg, ranges) = match fifo.entry(*dev).or_default().pop_front() {
                    Some((slot, _, m, r)) => {
                        accepted.entry(*dev).or_default().push((slot, r.clone()));
                        (m, r)
                    }
                    None => {
                        let m = next_msg;
                        next_msg += 1;
                        (m, vec![DirtyRanges::empty(); meta.out_lens.len()])
                    }
                };
                delivered = union_fp(delivered, &ranges);
                events.push(Some(HbEvent::new(
                    OWNER,
                    format!("ep{dev} status ack"),
                    HbOp::Recv { msg },
                )));
            }
            TraceKind::NonOwnerLost { dev } => lost_devs.push(*dev),
            TraceKind::OwnerPromoted { dev, .. } => {
                // The engine rolls the promoted endpoint back to a pristine
                // owner: its delivered ranges leave coverage (returned to
                // the frontier for the survivors) and its output buffers
                // are restored to the original snapshot. Mirror that here:
                // its accepted sends stop contributing data (the edges
                // survive for ordering, but ship nothing), the merge region
                // is rebuilt from the survivors' deliveries, and its
                // cumulative writes are erased before any host-side fold.
                for (slot, _) in accepted.remove(dev).unwrap_or_default() {
                    if let Some(HbEvent {
                        op: HbOp::Send { ranges, .. },
                        ..
                    }) = events[slot].as_mut()
                    {
                        *ranges = vec![DirtyRanges::empty(); meta.out_lens.len()];
                    }
                }
                delivered = vec![DirtyRanges::empty(); meta.out_lens.len()];
                for entries in accepted.values() {
                    for (_, r) in entries {
                        delivered = union_fp(delivered, r);
                    }
                }
                peer_written.remove(dev);
                // Promotion is a synchronous handoff: the new owner's prior
                // program order (its subkernels, its sends) happens-before
                // everything the owner role does from here on. An
                // empty-ranges message carries the clock join without
                // shipping any data — the re-formed wave walk re-executes
                // everything below the watermark instead.
                events.push(Some(HbEvent::new(
                    *dev as usize + 1,
                    format!("ep{dev} promotion handoff"),
                    HbOp::Send {
                        msg: next_msg,
                        ranges: vec![DirtyRanges::empty(); meta.out_lens.len()],
                    },
                )));
                events.push(Some(HbEvent::new(
                    OWNER,
                    format!("ep{dev} promotion join"),
                    HbOp::Recv { msg: next_msg },
                )));
                next_msg += 1;
            }
            TraceKind::EpDegradedRun { dev, from, to } => {
                degraded_peer = Some(*dev);
                events.push(Some(HbEvent::new(
                    *dev as usize + 1,
                    format!("ep{dev} degraded run {from}..{to}"),
                    HbOp::Write {
                        ranges: fp(*from, *to),
                    },
                )));
            }
            TraceKind::GraphRun {
                node,
                dev,
                from,
                to,
            } => {
                // A graph node runs whole on one endpoint, like a
                // peer-degraded span: its writes happen there and the final
                // read joins on the same endpoint.
                degraded_peer = Some(*dev);
                events.push(Some(HbEvent::new(
                    *dev as usize + 1,
                    format!("ep{dev} graph node {node} {from}..{to}"),
                    HbOp::Write {
                        ranges: fp(*from, *to),
                    },
                )));
            }
            TraceKind::MergeDone => {
                // Legacy merge covers the contiguous suffix above the final
                // watermark; a multi-device merge covers exactly what
                // arrived — islands from a fast peer merge too.
                let (label, ranges) = if multi {
                    (
                        "diff-merge of arrived claims".to_string(),
                        delivered.clone(),
                    )
                } else {
                    (
                        format!("diff-merge {final_wm}..{total}"),
                        fp(final_wm, total),
                    )
                };
                events.push(Some(HbEvent::new(OWNER, label, HbOp::Merge { ranges })));
            }
            TraceKind::DegradedRun { device, from, to } => {
                events.push(Some(HbEvent::new(
                    endpoint_of_device(*device),
                    format!("degraded run {from}..{to}"),
                    HbOp::Write {
                        ranges: fp(*from, *to),
                    },
                )));
            }
            TraceKind::KernelComplete { finisher } => {
                if multi && *finisher == Finisher::Cpu {
                    // Owner-GPU loss: the host folds each surviving peer's
                    // memory into its own copy before the final read. Model
                    // the fold as one join message per peer carrying its
                    // cumulative writes, merged at the host endpoint.
                    let mut folded = vec![DirtyRanges::empty(); meta.out_lens.len()];
                    for (dev, ranges) in &peer_written {
                        if lost_devs.contains(dev) {
                            continue;
                        }
                        events.push(Some(HbEvent::new(
                            *dev as usize + 1,
                            format!("ep{dev} memory fold"),
                            HbOp::Send {
                                msg: next_msg,
                                ranges: ranges.clone(),
                            },
                        )));
                        events.push(Some(HbEvent::new(
                            CONTRIB,
                            format!("ep{dev} fold join"),
                            HbOp::Recv { msg: next_msg },
                        )));
                        folded = union_fp(folded, ranges);
                        next_msg += 1;
                    }
                    if folded.iter().any(|r| !r.is_empty()) {
                        events.push(Some(HbEvent::new(
                            CONTRIB,
                            "host fold of peer results".to_string(),
                            HbOp::Merge { ranges: folded },
                        )));
                    }
                }
                let read_ep = match degraded_peer {
                    // Peer-degraded run: the data only exists on the
                    // surviving peer; the final read happens there.
                    Some(dev) => dev as usize + 1,
                    None => endpoint_of_finisher(*finisher),
                };
                events.push(Some(HbEvent::new(
                    read_ep,
                    format!("final read 0..{total}"),
                    HbOp::Read {
                        ranges: fp(0, total),
                    },
                )));
            }
            _ => {}
        }
    }
    events.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl::LintSeverity;

    fn r(ranges: &[(usize, usize)]) -> Vec<DirtyRanges> {
        vec![DirtyRanges::from_ranges(ranges.iter().copied())]
    }

    #[test]
    fn subtract_splits_and_clips() {
        let a = DirtyRanges::from_ranges([(0, 10), (20, 30)]);
        let b = DirtyRanges::from_ranges([(3, 5), (8, 22), (28, 40)]);
        assert_eq!(a.subtract(&b).as_slice(), &[(0, 3), (5, 8), (22, 28)]);
        assert!(a.subtract(&a).is_empty());
        assert_eq!(a.subtract(&DirtyRanges::empty()), a);
    }

    #[test]
    fn clean_two_endpoint_exchange() {
        // Contributor writes [8, 16), ships it, owner wrote [0, 8) itself,
        // merges the contribution and reads everything.
        let events = vec![
            HbEvent::new(
                0,
                "wave",
                HbOp::Write {
                    ranges: r(&[(0, 8)]),
                },
            ),
            HbEvent::new(
                1,
                "sub",
                HbOp::Write {
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(
                1,
                "send",
                HbOp::Send {
                    msg: 0,
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(0, "ack", HbOp::Recv { msg: 0 }),
            HbEvent::new(
                0,
                "merge",
                HbOp::Merge {
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(
                0,
                "read",
                HbOp::Read {
                    ranges: r(&[(0, 16)]),
                },
            ),
        ];
        assert!(check_hb(2, 1, &events).is_empty());
    }

    #[test]
    fn duplicated_owner_work_is_not_a_race() {
        // The owner also computed [8, 12) — duplicated work the protocol
        // permits; the merged contribution simply wins.
        let events = vec![
            HbEvent::new(
                0,
                "wave",
                HbOp::Write {
                    ranges: r(&[(0, 12)]),
                },
            ),
            HbEvent::new(
                1,
                "sub",
                HbOp::Write {
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(
                1,
                "send",
                HbOp::Send {
                    msg: 0,
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(0, "ack", HbOp::Recv { msg: 0 }),
            HbEvent::new(
                0,
                "merge",
                HbOp::Merge {
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(
                0,
                "read",
                HbOp::Read {
                    ranges: r(&[(0, 16)]),
                },
            ),
        ];
        assert!(check_hb(2, 1, &events).is_empty());
    }

    #[test]
    fn merge_before_arrival_is_flagged() {
        let events = vec![
            HbEvent::new(
                1,
                "sub",
                HbOp::Write {
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(
                1,
                "send",
                HbOp::Send {
                    msg: 0,
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(
                0,
                "merge",
                HbOp::Merge {
                    ranges: r(&[(8, 16)]),
                },
            ),
            HbEvent::new(0, "ack", HbOp::Recv { msg: 0 }),
        ];
        let diags = check_hb(2, 1, &events);
        assert!(
            diags.iter().any(|d| d.rule == "race-merge-order"),
            "{diags:?}"
        );
    }

    #[test]
    fn recv_without_send_is_flagged() {
        let events = vec![HbEvent::new(0, "ack", HbOp::Recv { msg: 7 })];
        let diags = check_hb(2, 1, &events);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "race-recv-without-send");
        assert_eq!(diags[0].severity, LintSeverity::Error);
    }

    #[test]
    fn uncovered_merge_region_is_stale() {
        let events = vec![HbEvent::new(
            0,
            "merge",
            HbOp::Merge {
                ranges: r(&[(0, 8)]),
            },
        )];
        let diags = check_hb(2, 1, &events);
        assert!(diags.iter().any(|d| d.rule == "race-stale-read"));
    }

    #[test]
    fn unread_region_is_stale() {
        let events = vec![
            HbEvent::new(
                0,
                "wave",
                HbOp::Write {
                    ranges: r(&[(0, 8)]),
                },
            ),
            HbEvent::new(
                0,
                "read",
                HbOp::Read {
                    ranges: r(&[(0, 16)]),
                },
            ),
        ];
        let diags = check_hb(2, 1, &events);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "race-stale-read");
        assert!(diags[0].message.contains("[8, 16)"), "{}", diags[0].message);
    }

    #[test]
    fn three_endpoint_trace_checks_without_device_assumptions() {
        // Three endpoints: 1 and 2 both contribute to a merge at 0. The
        // engine is generic over the endpoint count — nothing in it knows
        // about a CPU or a GPU.
        let clean = vec![
            HbEvent::new(
                0,
                "local",
                HbOp::Write {
                    ranges: r(&[(0, 4)]),
                },
            ),
            HbEvent::new(
                1,
                "w1",
                HbOp::Write {
                    ranges: r(&[(4, 8)]),
                },
            ),
            HbEvent::new(
                2,
                "w2",
                HbOp::Write {
                    ranges: r(&[(8, 12)]),
                },
            ),
            HbEvent::new(
                1,
                "s1",
                HbOp::Send {
                    msg: 1,
                    ranges: r(&[(4, 8)]),
                },
            ),
            HbEvent::new(
                2,
                "s2",
                HbOp::Send {
                    msg: 2,
                    ranges: r(&[(8, 12)]),
                },
            ),
            HbEvent::new(0, "a1", HbOp::Recv { msg: 1 }),
            HbEvent::new(0, "a2", HbOp::Recv { msg: 2 }),
            HbEvent::new(
                0,
                "merge",
                HbOp::Merge {
                    ranges: r(&[(4, 12)]),
                },
            ),
            HbEvent::new(
                0,
                "read",
                HbOp::Read {
                    ranges: r(&[(0, 12)]),
                },
            ),
        ];
        assert!(check_hb(3, 1, &clean).is_empty());

        // Same shape, but the two contributors overlap on [6, 10): their
        // sends are concurrent, so this is a true unordered-write race.
        let racy = vec![
            HbEvent::new(
                1,
                "w1",
                HbOp::Write {
                    ranges: r(&[(4, 10)]),
                },
            ),
            HbEvent::new(
                2,
                "w2",
                HbOp::Write {
                    ranges: r(&[(6, 12)]),
                },
            ),
            HbEvent::new(
                1,
                "s1",
                HbOp::Send {
                    msg: 1,
                    ranges: r(&[(4, 10)]),
                },
            ),
            HbEvent::new(
                2,
                "s2",
                HbOp::Send {
                    msg: 2,
                    ranges: r(&[(6, 12)]),
                },
            ),
            HbEvent::new(0, "a1", HbOp::Recv { msg: 1 }),
            HbEvent::new(0, "a2", HbOp::Recv { msg: 2 }),
            HbEvent::new(
                0,
                "merge",
                HbOp::Merge {
                    ranges: r(&[(4, 12)]),
                },
            ),
        ];
        let diags = check_hb(3, 1, &racy);
        assert!(
            diags.iter().any(|d| d.rule == "race-unordered-writes"),
            "{diags:?}"
        );
        assert!(diags[0].message.contains("[6, 10)"), "{}", diags[0].message);
    }

    #[test]
    fn ordered_overlapping_contributions_still_flagged() {
        // Contributor 1's two sends overlap each other; they are program-
        // ordered (not concurrent) but the merge still cannot apply both.
        let events = vec![
            HbEvent::new(
                1,
                "w1",
                HbOp::Write {
                    ranges: r(&[(0, 6)]),
                },
            ),
            HbEvent::new(
                1,
                "s1",
                HbOp::Send {
                    msg: 1,
                    ranges: r(&[(0, 6)]),
                },
            ),
            HbEvent::new(
                1,
                "w2",
                HbOp::Write {
                    ranges: r(&[(4, 8)]),
                },
            ),
            HbEvent::new(
                1,
                "s2",
                HbOp::Send {
                    msg: 2,
                    ranges: r(&[(4, 8)]),
                },
            ),
            HbEvent::new(0, "a1", HbOp::Recv { msg: 1 }),
            HbEvent::new(0, "a2", HbOp::Recv { msg: 2 }),
            HbEvent::new(
                0,
                "merge",
                HbOp::Merge {
                    ranges: r(&[(0, 8)]),
                },
            ),
        ];
        let diags = check_hb(2, 1, &events);
        assert!(
            diags.iter().any(|d| d.rule == "race-overlapping-writes"),
            "{diags:?}"
        );
    }

    #[test]
    fn clock_basics() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        assert!(a.leq(&b) && b.leq(&a));
        a.tick(0);
        assert!(b.lt(&a) && !a.leq(&b));
        b.tick(1);
        assert!(a.concurrent(&b));
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(j.get(0), 1);
        assert_eq!(j.get(1), 1);
        assert_eq!(j.len(), 2);
        assert!(!j.is_empty());
    }
}
