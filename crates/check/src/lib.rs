//! # fluidicl-check — correctness tooling for the FluidiCL reproduction
//!
//! Two complementary checkers, both producing [`LintDiagnostic`]s:
//!
//! * the **access sanitizer** ([`sanitize`]) verifies that a kernel's
//!   behaviour matches its declared [`ArgRole`](fluidicl_vcl::ArgRole)
//!   signature — the "simple compiler analysis at the whole variable level"
//!   the paper relies on (§4.1). FluidiCL's partitioning, diff-merge and
//!   transfer decisions are all driven by those declarations, so a kernel
//!   that reads an `Out` buffer before writing it, or whose work-groups
//!   write conflicting values to the same element, silently corrupts
//!   co-executed results. [`sanitize_launch`] catches both with sentinel
//!   poisoning and shadow-memory write maps, plus warns about declared but
//!   unused inputs;
//! * the **protocol-trace linter** (re-exported from [`fluidicl`]) replays a
//!   co-executed kernel's event trace and checks the watermark, queue
//!   ordering, wave/subkernel contiguity, coverage and transfer-byte
//!   invariants;
//! * the **disjoint-write prover** ([`disjoint`]) replays each launch one
//!   work-group at a time and checks that `with_disjoint_writes`
//!   declarations — which license lock-free parallel execution and
//!   dirty-range accounting — hold on real data (`--emit-disjoint` in the
//!   sweep binary).
//!
//! [`AuditDriver`] packages the sanitizer as a drop-in
//! [`ClDriver`](fluidicl_vcl::ClDriver), so any host program — every
//! Polybench benchmark — can be audited unmodified. The `fluidicl-check`
//! binary sweeps the whole suite across several machine models and runtime
//! configurations: `cargo run -p fluidicl-check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod disjoint;
pub mod faults;
pub mod graph;
pub mod race;
pub mod sanitize;

pub use audit::{AuditDriver, KernelFinding};
pub use disjoint::{prove_disjoint, DisjointDriver, DisjointFinding};
pub use faults::{
    render_faults_json, run_failover_sweep, run_fault_cell, run_fault_sweep, run_ndev_loss_sweep,
    run_shrink_comparison, CellOutcome, FailoverCell, FaultCell, NdevLossCell, ShrinkCell,
};
pub use fluidicl::{lint_report, lint_trace, LintDiagnostic, LintSeverity};
pub use graph::{check_schedule, max_overlap};
pub use race::{check_hb, race_check_report, HbEvent, HbOp, VClock, CONTRIB, OWNER};
pub use sanitize::{sanitize_launch, SENTINEL_A, SENTINEL_B};

/// Reduced Polybench problem sizes used by the sweep binary and the test
/// suites (kernel structure is preserved, runtimes stay in milliseconds).
///
/// # Panics
///
/// Panics on an unknown benchmark name.
pub fn sweep_size(name: &str) -> usize {
    match name {
        "ATAX" | "BICG" | "MVT" => 256,
        "CORR" => 64,
        "GESUMMV" => 512,
        "SYRK" | "SYR2K" | "GEMM" | "2MM" => 64,
        other => panic!("unknown benchmark {other}"),
    }
}

/// Data seed shared by the sweep binary and the test suites.
pub const SWEEP_SEED: u64 = 0xF1D1C1;

/// Renders a disjoint-write proof manifest: the JSON the runtime consumes
/// at startup via [`fluidicl::parse_disjoint_manifest`] and
/// `Fluidicl::apply_disjoint_proofs` to promote `with_disjoint_writes` on
/// kernels the prover verified on every launch of the sweep.
///
/// # Examples
///
/// ```
/// let text = fluidicl_check::disjoint_manifest(&["syrk".into(), "gemm".into()]);
/// assert_eq!(
///     fluidicl::parse_disjoint_manifest(&text),
///     vec!["syrk".to_string(), "gemm".to_string()]
/// );
/// ```
pub fn disjoint_manifest(proven: &[String]) -> String {
    let list = proven
        .iter()
        .map(|k| format!("\"{k}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{\n  \"proven\": [{list}]\n}}\n")
}
