//! Disjoint-write verification for `with_disjoint_writes` declarations.
//!
//! Kernels marked [`KernelDef::with_disjoint_writes`] promise that no two
//! work-groups write the same element of any output buffer. The runtime
//! leans on that promise twice: `execute_groups_par` splits a work-group
//! range across threads without synchronization, and the dirty-range
//! transfer accounting treats per-subkernel write footprints as
//! non-overlapping. A false declaration therefore corrupts co-executed
//! results silently. [`prove_disjoint`] turns the promise into a checked
//! fact: it replays the launch one work-group at a time over shadow memory
//! ([`fluidicl_vcl::execute_groups_shadowed`]) under two different
//! sentinel poisons and verifies that the per-group write maps are
//! pairwise disjoint.
//!
//! Like the sanitizer's `write-conflict` rule, a group that rewrites an
//! element with the value it already holds is invisible to the shadow
//! diff; running under two sentinel poisons makes a value coincidence in
//! one run diverge in the other, so only writes that are bit-identical
//! under *both* poisons — semantically benign duplicates — can slip
//! through.
//!
//! [`KernelDef::with_disjoint_writes`]: fluidicl_vcl::KernelDef::with_disjoint_writes

use std::collections::BTreeMap;

use fluidicl_des::SimDuration;
use fluidicl_vcl::exec::execute_all;
use fluidicl_vcl::{
    execute_groups_shadowed, ArgRole, BufferId, ClDriver, ClResult, KernelArg, Launch, Memory,
    NdRange, Program,
};

use crate::sanitize::{SENTINEL_A, SENTINEL_B};

/// Verdict of one launch's disjoint-write proof.
#[derive(Clone, Debug)]
pub struct DisjointFinding {
    /// Kernel name.
    pub kernel: String,
    /// Whether the kernel declares `with_disjoint_writes`.
    pub declared: bool,
    /// Whether the proof went through: every pair of work-groups writes
    /// disjoint element sets on every output buffer.
    pub proven: bool,
    /// Work-groups the proof covered.
    pub groups: u64,
    /// Human-readable description of the first overlap found, if any.
    pub detail: Option<String>,
}

impl DisjointFinding {
    /// A declaration the proof could not back up — the dangerous case.
    pub fn is_false_declaration(&self) -> bool {
        self.declared && !self.proven
    }
}

/// Proves (or refutes) that `launch`'s work-groups write pairwise-disjoint
/// element sets, over a clone of `mem`.
///
/// Returns `(proven, first_overlap)`; `proven == true` means no overlap
/// was observed under either sentinel poison.
///
/// # Errors
///
/// Propagates execution errors (signature mismatch, missing buffer).
pub fn prove_disjoint(launch: &Launch, mem: &Memory) -> ClResult<(bool, Option<String>)> {
    let (_ins, out_ids, _scalars) = launch.kernel.classify_args(&launch.args)?;
    let specs: Vec<_> = launch
        .kernel
        .args()
        .iter()
        .filter(|s| s.role.is_output())
        .collect();
    let total = launch.ndrange.num_groups();
    for poison in [SENTINEL_A, SENTINEL_B] {
        let mut m = mem.clone();
        for (k, id) in out_ids.iter().enumerate() {
            if specs[k].role == ArgRole::Out {
                m.get_mut(*id)?.fill(poison);
            }
        }
        let rec = execute_groups_shadowed(launch, &mut m, 0, total)?;
        for (k, spec) in specs.iter().enumerate() {
            let mut owner: BTreeMap<usize, u64> = BTreeMap::new();
            for (g, maps) in &rec.groups {
                for &i in maps[k].keys() {
                    if let Some(&g0) = owner.get(&i) {
                        return Ok((
                            false,
                            Some(format!(
                                "work-groups {g0} and {g} both write element {i} of `{}`",
                                spec.name
                            )),
                        ));
                    }
                    owner.insert(i, *g);
                }
            }
        }
    }
    Ok((true, None))
}

/// A [`ClDriver`] that runs [`prove_disjoint`] on every enqueued kernel,
/// mirroring [`AuditDriver`](crate::AuditDriver): host programs run on it
/// unmodified and results stay exact.
pub struct DisjointDriver {
    program: Program,
    mem: Memory,
    next_id: u64,
    findings: Vec<DisjointFinding>,
}

impl DisjointDriver {
    /// Creates a disjoint-write auditing driver for `program`.
    pub fn new(program: Program) -> Self {
        DisjointDriver {
            program,
            mem: Memory::new(),
            next_id: 0,
            findings: Vec::new(),
        }
    }

    /// Per-launch verdicts, in enqueue order.
    pub fn findings(&self) -> &[DisjointFinding] {
        &self.findings
    }

    /// Launches whose `with_disjoint_writes` declaration the proof refuted.
    pub fn false_declarations(&self) -> Vec<&DisjointFinding> {
        self.findings
            .iter()
            .filter(|f| f.is_false_declaration())
            .collect()
    }

    /// Launches that declared disjoint writes and were proven.
    pub fn verified_declarations(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.declared && f.proven)
            .count()
    }
}

impl ClDriver for DisjointDriver {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.mem.alloc(id, len);
        id
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        self.mem.write(id, data)
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let launch = Launch::new(def, ndrange, args.to_vec());
        let (proven, detail) = prove_disjoint(&launch, &self.mem)?;
        self.findings.push(DisjointFinding {
            kernel: kernel.to_string(),
            declared: launch.kernel.disjoint_writes(),
            proven,
            groups: launch.ndrange.num_groups(),
            detail,
        });
        execute_all(&launch, &mut self.mem)
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        self.mem.get(id).map(<[f32]>::to_vec)
    }

    fn elapsed(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        self.findings
            .iter()
            .map(|f| (f.kernel.clone(), SimDuration::ZERO))
            .collect()
    }
}
