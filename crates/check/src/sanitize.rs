//! The kernel access sanitizer.
//!
//! FluidiCL trusts each kernel's declared signature: `Out` buffers are
//! poison-initialized per device and reconciled by diff-merge, `InOut`
//! buffers force a pre-kernel transfer, `In` buffers are never copied back.
//! A misdeclared kernel therefore computes correct results single-device
//! but corrupts them under co-execution. The sanitizer detects the lies by
//! running the kernel a few times over cloned memory with controlled
//! initial states and comparing shadow-memory write maps
//! ([`fluidicl_vcl::execute_groups_shadowed`]):
//!
//! * **`out-read-before-write`** — run twice with every `Out` buffer filled
//!   with two different sentinel values. A kernel that never reads its
//!   `Out` buffers writes bit-identical values both times; any divergence
//!   proves a read of uninitialized output (the argument must be `InOut`).
//! * **`write-conflict`** — two work-groups writing *different* values to
//!   the same element of one output buffer. Under co-execution those
//!   groups can land on different devices and the final value depends on
//!   the merge order. Writing the *same* value twice is benign (symmetric
//!   fills do this) and is not flagged.
//! * **`inout-never-read`** — perturb one `InOut` buffer's initial
//!   contents; if nothing the kernel writes changes, the buffer is
//!   write-only and should be declared `Out` (an `InOut` declaration costs
//!   an extra host-to-device transfer per launch).
//! * **`unused-input`** — an `In` buffer no work-item ever read.
//! * **`output-never-written`** — a writable buffer the kernel never
//!   touched.
//! * **`signature`** — the argument list does not match the declared
//!   signature at all (scalar passed for a buffer, aliasing, wrong arity).
//!
//! Everything the sanitizer runs happens on clones of the caller's
//! [`Memory`]; the observable state is untouched.

use fluidicl::LintDiagnostic;
use fluidicl_vcl::{
    execute_groups_shadowed, AccessRecord, ArgRole, ArgSpec, ClResult, Launch, Memory,
};

/// First sentinel for `Out`-buffer poisoning. Finite (not `NaN`, whose
/// propagation collapses both runs to the same bits) and of moderate
/// magnitude: a huge sentinel would absorb typical addends under f32
/// rounding (`1e30 + 2.0 == 1e30`), hiding an accumulating kernel's reads.
/// The literal spells out the exact f32 value (a multiple of 2⁻⁷).
#[allow(clippy::excessive_precision)]
pub const SENTINEL_A: f32 = 104_729.531_25;

/// Second sentinel for `Out`-buffer poisoning; opposite sign from
/// [`SENTINEL_A`] so even sign-dependent reads (`max`, `abs`, branches)
/// diverge between the runs.
#[allow(clippy::excessive_precision)]
pub const SENTINEL_B: f32 = -88_211.406_25;

/// Sanitizes one kernel launch against `mem` (cloned, never modified).
///
/// Returns one diagnostic per violated rule (see the module docs); an empty
/// vector means the kernel's behaviour matches its declared signature.
pub fn sanitize_launch(launch: &Launch, mem: &Memory) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    let out_ids = match launch.kernel.classify_args(&launch.args) {
        Ok((_ins, outs, _scalars)) => outs,
        Err(e) => return vec![LintDiagnostic::error("signature", e.to_string())],
    };
    let specs = launch.kernel.args();
    let out_specs: Vec<&ArgSpec> = specs.iter().filter(|s| s.role.is_output()).collect();
    let in_specs: Vec<&ArgSpec> = specs.iter().filter(|s| s.role == ArgRole::In).collect();
    let total = launch.ndrange.num_groups();

    let run = |poison: f32, perturb: Option<usize>| -> ClResult<AccessRecord> {
        let mut m = mem.clone();
        for (k, id) in out_ids.iter().enumerate() {
            if out_specs[k].role == ArgRole::Out {
                m.get_mut(*id)?.fill(poison);
            }
        }
        if let Some(k) = perturb {
            for v in m.get_mut(out_ids[k])?.iter_mut() {
                *v = *v * 1.5 + 0.25;
            }
        }
        execute_groups_shadowed(launch, &mut m, 0, total)
    };

    let (rec_a, rec_b) = match (run(SENTINEL_A, None), run(SENTINEL_B, None)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            return vec![LintDiagnostic::error("execution", e.to_string())]
        }
    };

    // out-read-before-write: identical inputs, different Out poison — any
    // difference in what got written proves the kernel read an Out buffer.
    for (k, spec) in out_specs.iter().enumerate() {
        if spec.role != ArgRole::Out {
            continue;
        }
        if let Some(((g, _), _)) = rec_a
            .groups
            .iter()
            .zip(&rec_b.groups)
            .find(|((_, ma), (_, mb))| ma[k] != mb[k])
        {
            out.push(LintDiagnostic::error(
                "out-read-before-write",
                format!(
                    "`Out` arg `{}` influences the kernel's writes (first seen in \
                     work-group {g}): the kernel reads it before writing, so it must \
                     be declared `InOut`",
                    spec.name
                ),
            ));
        }
    }

    // write-conflict: a later work-group overwrote an element with a
    // different value. (An identical rewrite never enters the later
    // group's write map — the shadow diff is against the advanced
    // baseline — so benign duplicate writes pass.)
    for (k, spec) in out_specs.iter().enumerate() {
        let mut owner: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
        'conflict: for (g, maps) in &rec_a.groups {
            for &i in maps[k].keys() {
                if let Some(&g0) = owner.get(&i) {
                    out.push(LintDiagnostic::error(
                        "write-conflict",
                        format!(
                            "work-groups {g0} and {g} write different values to element \
                             {i} of `{}`: the co-executed result depends on which device \
                             ran which group",
                            spec.name
                        ),
                    ));
                    break 'conflict;
                }
                owner.insert(i, *g);
            }
        }
    }

    // inout-never-read: perturb each InOut buffer in isolation.
    for (k, spec) in out_specs.iter().enumerate() {
        if spec.role != ArgRole::InOut {
            continue;
        }
        match run(SENTINEL_A, Some(k)) {
            Ok(rec_c) if rec_c.groups == rec_a.groups => {
                out.push(LintDiagnostic::warning(
                    "inout-never-read",
                    format!(
                        "`InOut` arg `{}`: perturbing its initial contents changed \
                         nothing the kernel wrote; declaring it `Out` would save a \
                         host-to-device transfer per launch",
                        spec.name
                    ),
                ));
            }
            Ok(_) => {}
            Err(e) => out.push(LintDiagnostic::error("execution", e.to_string())),
        }
    }

    // output-never-written: a writable buffer with an empty write map in
    // both sentinel runs.
    for (k, spec) in out_specs.iter().enumerate() {
        if mem.len_of(out_ids[k]).unwrap_or(0) > 0
            && rec_a.total_writes(k).is_empty()
            && rec_b.total_writes(k).is_empty()
        {
            out.push(LintDiagnostic::warning(
                "output-never-written",
                format!(
                    "buffer arg `{}` is declared writable but the kernel never wrote it",
                    spec.name
                ),
            ));
        }
    }

    // unused-input: In buffers no work-item read in either run.
    for (k, spec) in in_specs.iter().enumerate() {
        if !rec_a.inputs_read[k] && !rec_b.inputs_read[k] {
            out.push(LintDiagnostic::warning(
                "unused-input",
                format!("`In` arg `{}` is never read by any work-item", spec.name),
            ));
        }
    }
    out
}
