//! A sanitizing [`ClDriver`]: run any host program, audit every launch.

use fluidicl::{LintDiagnostic, LintSeverity};
use fluidicl_des::SimDuration;
use fluidicl_vcl::exec::execute_all;
use fluidicl_vcl::{BufferId, ClDriver, ClResult, KernelArg, Launch, Memory, NdRange, Program};

use crate::sanitize::sanitize_launch;

/// Sanitizer diagnostics of one audited kernel launch.
#[derive(Clone, Debug)]
pub struct KernelFinding {
    /// Kernel name.
    pub kernel: String,
    /// Diagnostics for this launch; empty means the launch was clean.
    pub diagnostics: Vec<LintDiagnostic>,
}

/// A [`ClDriver`] that executes kernels functionally on a single address
/// space and runs [`sanitize_launch`] on every enqueue.
///
/// Host programs written against `ClDriver` — every Polybench benchmark —
/// run on it unmodified, so auditing a whole application is one driver
/// swap, mirroring how FluidiCL itself integrates (paper §5). Results are
/// exact (the same kernel bodies run over the same data), so the usual
/// reference validation works on top; virtual time is not modelled and
/// [`ClDriver::elapsed`] reports zero.
///
/// # Examples
///
/// ```
/// use fluidicl_check::AuditDriver;
/// use fluidicl_polybench::find;
///
/// let b = find("SYRK").unwrap();
/// let mut driver = AuditDriver::new((b.program)(16));
/// assert!(b.run_and_validate_sized(&mut driver, 16, 7).unwrap());
/// assert_eq!(driver.error_count(), 0);
/// ```
pub struct AuditDriver {
    program: Program,
    mem: Memory,
    next_id: u64,
    findings: Vec<KernelFinding>,
}

impl AuditDriver {
    /// Creates an audit driver for `program`.
    pub fn new(program: Program) -> Self {
        AuditDriver {
            program,
            mem: Memory::new(),
            next_id: 0,
            findings: Vec::new(),
        }
    }

    /// Per-launch findings, in enqueue order.
    pub fn findings(&self) -> &[KernelFinding] {
        &self.findings
    }

    /// Total diagnostics across all launches.
    pub fn diagnostic_count(&self) -> usize {
        self.findings.iter().map(|f| f.diagnostics.len()).sum()
    }

    /// Error-severity diagnostics across all launches.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .flat_map(|f| &f.diagnostics)
            .filter(|d| d.severity == LintSeverity::Error)
            .count()
    }
}

impl ClDriver for AuditDriver {
    fn create_buffer(&mut self, len: usize) -> BufferId {
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.mem.alloc(id, len);
        id
    }

    fn write_buffer(&mut self, id: BufferId, data: &[f32]) -> ClResult<()> {
        self.mem.write(id, data)
    }

    fn enqueue_kernel(
        &mut self,
        kernel: &str,
        ndrange: NdRange,
        args: &[KernelArg],
    ) -> ClResult<()> {
        let def = self.program.kernel(kernel)?;
        let launch = Launch::new(def, ndrange, args.to_vec());
        self.findings.push(KernelFinding {
            kernel: kernel.to_string(),
            diagnostics: sanitize_launch(&launch, &self.mem),
        });
        execute_all(&launch, &mut self.mem)
    }

    fn read_buffer(&mut self, id: BufferId) -> ClResult<Vec<f32>> {
        self.mem.get(id).map(<[f32]>::to_vec)
    }

    fn elapsed(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn kernel_times(&self) -> Vec<(String, SimDuration)> {
        self.findings
            .iter()
            .map(|f| (f.kernel.clone(), SimDuration::ZERO))
            .collect()
    }
}
