//! Kernel-graph schedule validator: structural checks over the
//! [`GraphSchedule`]s a graph-scheduling runtime records at each flush.
//!
//! The runtime's DAG builder promises *conservative* edges: every pair of
//! launches whose declared footprints conflict on a buffer must be ordered
//! by an edge, and the executor must respect every edge it was given. This
//! module re-derives the conflict pairs from the per-node footprints the
//! schedule carries and checks both promises after the fact — a dropped
//! edge (builder bug) or an edge the executor ignored (scheduler bug)
//! surfaces as a [`LintDiagnostic`], the same currency as the protocol
//! linter and the race detector.

use fluidicl::{DepKind, GraphSchedule, LintDiagnostic};
use fluidicl_vcl::{BufferId, DirtyRanges};

/// Re-derives the conflict pairs of a schedule from its node footprints:
/// for each `i < j`, each buffer where `i`'s writes overlap `j`'s reads
/// (true), `i`'s reads overlap `j`'s writes (anti), or both write
/// (output).
fn conflicts(s: &GraphSchedule) -> Vec<(usize, usize, BufferId, DepKind)> {
    let overlap = |a: &[(BufferId, DirtyRanges)], b: &[(BufferId, DirtyRanges)]| {
        let mut hits = Vec::new();
        for (id, fa) in a {
            for (jd, fb) in b {
                if id == jd && !fa.intersect(fb).is_empty() {
                    hits.push(*id);
                }
            }
        }
        hits
    };
    let mut out = Vec::new();
    for i in 0..s.nodes.len() {
        for j in i + 1..s.nodes.len() {
            let (a, b) = (&s.nodes[i], &s.nodes[j]);
            for id in overlap(&a.writes, &b.reads) {
                out.push((i, j, id, DepKind::True));
            }
            for id in overlap(&a.reads, &b.writes) {
                out.push((i, j, id, DepKind::Anti));
            }
            for id in overlap(&a.writes, &b.writes) {
                out.push((i, j, id, DepKind::Output));
            }
        }
    }
    out
}

/// Validates one flushed schedule. Rules:
///
/// * `graph-edge-shape` — an edge references a node out of range or does
///   not point forward in enqueue order;
/// * `graph-missing-edge` — two nodes whose recorded footprints conflict
///   on a buffer have no edge between them (a builder under-approximation:
///   the scheduler was free to run a conflicting pair concurrently);
/// * `graph-edge-order` — the consumer of an edge started before its
///   producer completed (the executor ignored a dependence it knew about);
/// * `graph-race` — a conflicting pair's execution windows overlap in
///   virtual time, independent of whether an edge exists. This is the
///   materialized race a dropped edge permits.
pub fn check_schedule(s: &GraphSchedule) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    for e in &s.edges {
        if e.from >= s.nodes.len() || e.to >= s.nodes.len() || e.from >= e.to {
            out.push(LintDiagnostic::error(
                "graph-edge-shape",
                format!(
                    "edge {} -> {} ({} node(s) in the schedule) is malformed",
                    e.from,
                    e.to,
                    s.nodes.len()
                ),
            ));
            continue;
        }
        let (from, to) = (&s.nodes[e.from], &s.nodes[e.to]);
        if to.start_at < from.complete_at {
            out.push(LintDiagnostic::error(
                "graph-edge-order",
                format!(
                    "{} edge {} -> {} on buffer {}: consumer started at {} \
                     before producer completed at {}",
                    e.kind.label(),
                    e.from,
                    e.to,
                    e.buffer.0,
                    to.start_at,
                    from.complete_at
                ),
            ));
        }
    }
    for (i, j, buffer, kind) in conflicts(s) {
        if !s
            .edges
            .iter()
            .any(|e| e.from == i && e.to == j && e.buffer == buffer)
        {
            out.push(LintDiagnostic::error(
                "graph-missing-edge",
                format!(
                    "nodes {i} (`{}`) and {j} (`{}`) conflict on buffer {} \
                     ({}) but no edge orders them",
                    s.nodes[i].kernel,
                    s.nodes[j].kernel,
                    buffer.0,
                    kind.label()
                ),
            ));
        }
        let (a, b) = (&s.nodes[i], &s.nodes[j]);
        if a.start_at < b.complete_at && b.start_at < a.complete_at {
            out.push(LintDiagnostic::error(
                "graph-race",
                format!(
                    "nodes {i} (`{}`, lane {}) and {j} (`{}`, lane {}) \
                     conflict on buffer {} ({}) and ran concurrently",
                    a.kernel,
                    a.lane,
                    b.kernel,
                    b.lane,
                    buffer.0,
                    kind.label()
                ),
            ));
        }
    }
    out
}

/// Maximum number of nodes whose `[start_at, complete_at)` windows overlap
/// at any instant — the schedule's achieved parallelism. A serial schedule
/// reports 1; a builder that emits spurious edges between independent
/// nodes drags this back to 1, which the sweep and the mutation tests
/// assert against.
pub fn max_overlap(s: &GraphSchedule) -> usize {
    let mut events = Vec::new();
    for n in &s.nodes {
        if n.start_at < n.complete_at {
            events.push((n.start_at, 1i64));
            events.push((n.complete_at, -1i64));
        }
    }
    // Ends sort before starts at the same instant: touching windows do
    // not overlap.
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, d) in events {
        live += d;
        peak = peak.max(live);
    }
    usize::try_from(peak.max(0)).expect("peak fits usize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidicl::{Fluidicl, FluidiclConfig};
    use fluidicl_hetsim::MachineConfig;
    use fluidicl_polybench::pipeline_benchmark;

    fn batchmm_schedules() -> Vec<GraphSchedule> {
        let spec = pipeline_benchmark();
        let n = 96;
        let mut rt = Fluidicl::new(
            MachineConfig::paper_testbed_3dev(),
            FluidiclConfig::default().with_graph_scheduling(true),
            (spec.program)(n),
        );
        let ok = spec
            .run_and_validate_sized(&mut rt, n, 0x6A_F9)
            .expect("batchmm runs");
        assert!(ok, "graph-scheduled BATCHMM output mismatch");
        rt.graph_schedules().to_vec()
    }

    #[test]
    fn real_schedules_are_clean_and_parallel() {
        let schedules = batchmm_schedules();
        assert!(!schedules.is_empty());
        let mut peak = 0;
        for s in &schedules {
            let diags = check_schedule(s);
            assert!(diags.is_empty(), "clean schedule flagged: {diags:?}");
            peak = peak.max(max_overlap(s));
        }
        // The four independent products must actually overlap; a builder
        // that emitted spurious edges between them would serialize the
        // graph and fail here.
        assert!(peak >= 2, "independent products never overlapped");
    }

    #[test]
    fn dropped_edge_is_reported() {
        let mut s = batchmm_schedules().into_iter().next().expect("one flush");
        let true_edge = s
            .edges
            .iter()
            .position(|e| e.kind == DepKind::True)
            .expect("the fan-in reduction has true edges");
        s.edges.remove(true_edge);
        let diags = check_schedule(&s);
        assert!(
            diags.iter().any(|d| d.rule == "graph-missing-edge"),
            "dropped edge not detected: {diags:?}"
        );
    }

    #[test]
    fn executed_race_is_reported() {
        // Drop an edge *and* pretend the scheduler exploited it: pull the
        // consumer's window back over its producer's. Both the ordering
        // violation and the materialized race must surface.
        let mut s = batchmm_schedules().into_iter().next().expect("one flush");
        let e = s
            .edges
            .iter()
            .find(|e| e.kind == DepKind::True)
            .expect("true edge")
            .clone();
        let (from_start, from_complete) = {
            let f = &s.nodes[e.from];
            (f.start_at, f.complete_at)
        };
        let consumer = &mut s.nodes[e.to];
        consumer.start_at = from_start;
        consumer.complete_at = from_complete;
        let diags = check_schedule(&s);
        assert!(
            diags.iter().any(|d| d.rule == "graph-edge-order"),
            "ignored edge not detected: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.rule == "graph-race"),
            "overlapping conflict not detected: {diags:?}"
        );
    }

    #[test]
    fn malformed_edges_are_reported() {
        let mut s = batchmm_schedules().into_iter().next().expect("one flush");
        let mut e = s.edges[0].clone();
        e.to = e.from;
        s.edges.push(e);
        let diags = check_schedule(&s);
        assert!(diags.iter().any(|d| d.rule == "graph-edge-shape"));
    }

    #[test]
    fn serial_windows_report_no_overlap() {
        let mut s = batchmm_schedules().into_iter().next().expect("one flush");
        // Rewrite the windows into a serial chain: parallelism collapses
        // to 1 — the signal the mutation tests use to detect a builder
        // that over-serializes with spurious edges.
        let mut t = s.nodes[0].start_at;
        let step = fluidicl_des::SimDuration::from_nanos(10);
        for n in &mut s.nodes {
            n.start_at = t;
            t += step;
            n.complete_at = t;
        }
        assert_eq!(max_overlap(&s), 1);
    }
}
