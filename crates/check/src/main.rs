//! `fluidicl-check` — sweep the Polybench suite through both checkers.
//!
//! Stage 1 audits every benchmark's kernels with the access sanitizer
//! ([`fluidicl_check::AuditDriver`]) and validates results against the
//! sequential references. Stage 2 co-executes every benchmark under
//! FluidiCL across three machine models and several runtime
//! configurations with protocol validation on, then lints every kernel
//! report again explicitly. Exits non-zero if anything is flagged.
//!
//! Both stages fan their independent units out over the [`fluidicl_par`]
//! pool; per-unit output is buffered and printed in sweep order, so the
//! report and the exit code are identical to a sequential (`--jobs 1`)
//! run. `--quick` restricts stage 2 to the paper-testbed machine (CI's
//! fast path); `--jobs N` caps the worker threads. `--emit-disjoint`
//! inserts a disjoint-write audit ([`fluidicl_check::DisjointDriver`])
//! between the stages: every launch's per-work-group write footprints are
//! replayed, `with_disjoint_writes` declarations that the replay refutes
//! are errors, and kernels proven disjoint on *every* launch are written
//! to `ci/disjoint_proofs.json` — the manifest the runtime consumes via
//! `Fluidicl::apply_disjoint_proofs`.
//!
//! `--faults [--seeds N]` switches to the fault-injection sweep instead:
//! every benchmark × fault kind × seed must recover bit-identically or
//! fail with a typed error, twice over (determinism); the summary goes to
//! `FAULTS_summary.json` and any contract violation fails the run.

use std::collections::BTreeMap;

use fluidicl::{lint_report, Fluidicl, FluidiclConfig, LintSeverity};
use fluidicl_check::{race_check_report, AuditDriver, CellOutcome, DisjointDriver, SWEEP_SEED};
use fluidicl_hetsim::{AbortMode, MachineConfig};
use fluidicl_polybench::all_benchmarks;

/// One machine-readable finding of the sweep, for `--report-json`.
#[derive(Clone)]
struct JsonFinding {
    stage: &'static str,
    machine: String,
    config: String,
    bench: String,
    kernel: String,
    rule: String,
    severity: LintSeverity,
    message: String,
}

/// Buffered result of one sweep unit: the lines it prints plus its error
/// and warning counts and machine-readable findings.
#[derive(Default)]
struct UnitReport {
    lines: Vec<String>,
    problems: usize,
    warnings: usize,
    findings: Vec<JsonFinding>,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the sweep's findings plus per-kernel access summaries as one
/// JSON artifact (the `--report-json` output CI uploads).
fn render_report_json(findings: &[JsonFinding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let sev = match f.severity {
            LintSeverity::Error => "error",
            LintSeverity::Warning => "warning",
        };
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"machine\": \"{}\", \"config\": \"{}\", \
             \"bench\": \"{}\", \"kernel\": \"{}\", \"rule\": \"{}\", \
             \"severity\": \"{sev}\", \"message\": \"{}\"}}{}\n",
            json_escape(f.stage),
            json_escape(&f.machine),
            json_escape(&f.config),
            json_escape(&f.bench),
            json_escape(&f.kernel),
            json_escape(&f.rule),
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"kernel_summaries\": [\n");
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let n = fluidicl_check::sweep_size(b.name);
        let program = (b.program)(n);
        let mut names: Vec<&str> = program.kernel_names().collect();
        names.sort_unstable();
        for name in names {
            let k = program.kernel(name).expect("listed kernel exists");
            let args = k
                .args()
                .iter()
                .map(|a| {
                    let access = a
                        .access
                        .as_ref()
                        .map_or("null".to_string(), |p| format!("\"{}\"", p.label()));
                    format!(
                        "{{\"name\": \"{}\", \"role\": \"{:?}\", \"access\": {access}}}",
                        json_escape(&a.name),
                        a.role
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            rows.push(format!(
                "    {{\"bench\": \"{}\", \"kernel\": \"{}\", \
                 \"write_footprints\": {}, \"args\": [{args}]}}",
                json_escape(b.name),
                json_escape(name),
                k.has_write_footprints()
            ));
        }
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Resolves `rel` against the repository root (two levels above this
/// crate's manifest), so artifact paths work from any working directory.
fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut emit_disjoint = false;
    let mut faults = false;
    let mut seeds = 4u64;
    let mut faults_out = repo_path("FAULTS_summary.json");
    let mut report_json: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--emit-disjoint" => emit_disjoint = true,
            "--faults" => faults = true,
            "--report-json" => {
                report_json = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--report-json requires a path argument");
                    std::process::exit(2);
                }));
            }
            "--seeds" => {
                let Some(n) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--seeds requires a positive integer argument");
                    std::process::exit(2);
                };
                seeds = n.max(1);
            }
            "--faults-out" => {
                faults_out = it.next().unwrap_or_else(|| {
                    eprintln!("--faults-out requires a path argument");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs requires a positive integer argument");
                    std::process::exit(2);
                };
                fluidicl_par::configure_jobs(n);
            }
            other => {
                eprintln!(
                    "usage: fluidicl-check [--quick] [--emit-disjoint] [--jobs N] \
                     [--report-json PATH] [--faults [--seeds N] [--faults-out PATH]]"
                );
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    if faults {
        run_faults_mode(seeds, &faults_out);
        return;
    }

    let mut problems = 0usize;
    let mut warnings = 0usize;
    let mut findings: Vec<JsonFinding> = Vec::new();

    println!("== stage 1: access sanitizer over the Polybench suite ==");
    let stage1 = fluidicl_par::par_map(all_benchmarks(), |b| {
        let mut r = UnitReport::default();
        let n = fluidicl_check::sweep_size(b.name);
        let mut driver = AuditDriver::new((b.program)(n));
        match b.run_and_validate_sized(&mut driver, n, SWEEP_SEED) {
            Ok(true) => {}
            Ok(false) => {
                r.lines.push(format!(
                    "  {:8} n={n}: output mismatch vs reference",
                    b.name
                ));
                r.problems += 1;
                r.findings.push(JsonFinding {
                    stage: "sanitizer",
                    machine: String::new(),
                    config: String::new(),
                    bench: b.name.to_string(),
                    kernel: String::new(),
                    rule: "output-mismatch".to_string(),
                    severity: LintSeverity::Error,
                    message: "output mismatch vs reference".to_string(),
                });
            }
            Err(e) => {
                r.lines
                    .push(format!("  {:8} n={n}: driver error: {e}", b.name));
                r.problems += 1;
                r.findings.push(JsonFinding {
                    stage: "sanitizer",
                    machine: String::new(),
                    config: String::new(),
                    bench: b.name.to_string(),
                    kernel: String::new(),
                    rule: "driver-error".to_string(),
                    severity: LintSeverity::Error,
                    message: e.to_string(),
                });
            }
        }
        let mut flagged = 0usize;
        for finding in driver.findings() {
            for d in &finding.diagnostics {
                r.lines
                    .push(format!("  {:8} kernel `{}`: {d}", b.name, finding.kernel));
                match d.severity {
                    LintSeverity::Error => r.problems += 1,
                    LintSeverity::Warning => r.warnings += 1,
                }
                r.findings.push(JsonFinding {
                    stage: "sanitizer",
                    machine: String::new(),
                    config: String::new(),
                    bench: b.name.to_string(),
                    kernel: finding.kernel.clone(),
                    rule: d.rule.to_string(),
                    severity: d.severity,
                    message: d.message.clone(),
                });
                flagged += 1;
            }
        }
        if flagged == 0 {
            r.lines.push(format!(
                "  {:8} n={n}: {} launch(es) clean",
                b.name,
                driver.findings().len()
            ));
        }
        r
    });
    for r in stage1 {
        for line in &r.lines {
            println!("{line}");
        }
        problems += r.problems;
        warnings += r.warnings;
        findings.extend(r.findings);
    }

    if emit_disjoint {
        println!("== disjoint-write audit over the Polybench suite ==");
        let audit = fluidicl_par::par_map(all_benchmarks(), |b| {
            let mut r = UnitReport::default();
            let n = fluidicl_check::sweep_size(b.name);
            let mut driver = DisjointDriver::new((b.program)(n));
            match b.run_and_validate_sized(&mut driver, n, SWEEP_SEED) {
                Ok(true) => {}
                Ok(false) => {
                    r.lines.push(format!(
                        "  {:8} n={n}: output mismatch vs reference",
                        b.name
                    ));
                    r.problems += 1;
                }
                Err(e) => {
                    r.lines
                        .push(format!("  {:8} n={n}: driver error: {e}", b.name));
                    r.problems += 1;
                }
            }
            for f in driver.findings() {
                let verdict = match (f.declared, f.proven) {
                    (true, true) => "declared disjoint, proven".to_string(),
                    (false, true) => "undeclared, proven disjoint".to_string(),
                    (false, false) => format!(
                        "overlapping writes ({})",
                        f.detail.as_deref().unwrap_or("no detail")
                    ),
                    (true, false) => {
                        r.problems += 1;
                        r.findings.push(JsonFinding {
                            stage: "disjoint",
                            machine: String::new(),
                            config: String::new(),
                            bench: b.name.to_string(),
                            kernel: f.kernel.clone(),
                            rule: "disjoint-false-declaration".to_string(),
                            severity: LintSeverity::Error,
                            message: f
                                .detail
                                .clone()
                                .unwrap_or_else(|| "overlap found".to_string()),
                        });
                        format!(
                            "FALSE `with_disjoint_writes` declaration: {}",
                            f.detail.as_deref().unwrap_or("overlap found")
                        )
                    }
                };
                r.lines.push(format!(
                    "  {:8} kernel `{}` ({} group(s)): {verdict}",
                    b.name, f.kernel, f.groups
                ));
            }
            let proofs: Vec<(String, bool)> = driver
                .findings()
                .iter()
                .map(|f| (f.kernel.clone(), f.proven))
                .collect();
            (r, driver.verified_declarations(), proofs)
        });
        let mut verified = 0usize;
        // A kernel earns a manifest entry only if *every* launch of it,
        // across the whole sweep, was proven disjoint.
        let mut proven_by_kernel: BTreeMap<String, bool> = BTreeMap::new();
        for (r, v, proofs) in audit {
            for line in &r.lines {
                println!("{line}");
            }
            problems += r.problems;
            warnings += r.warnings;
            findings.extend(r.findings);
            verified += v;
            for (kernel, proven) in proofs {
                proven_by_kernel
                    .entry(kernel)
                    .and_modify(|p| *p &= proven)
                    .or_insert(proven);
            }
        }
        println!("  {verified} declared-disjoint launch(es) verified");
        let proven: Vec<String> = proven_by_kernel
            .into_iter()
            .filter_map(|(k, p)| p.then_some(k))
            .collect();
        let manifest_path = repo_path("ci/disjoint_proofs.json");
        std::fs::write(&manifest_path, fluidicl_check::disjoint_manifest(&proven))
            .expect("write disjoint proof manifest");
        println!(
            "  {} kernel(s) proven disjoint on every launch -> {manifest_path}",
            proven.len()
        );
    }

    println!("== stage 2: protocol linter across machines and configs ==");
    let mut machines = vec![("paper-testbed", MachineConfig::paper_testbed())];
    if !quick {
        machines.push(("weak-gpu-laptop", MachineConfig::weak_gpu_laptop()));
        machines.push(("big-gpu-node", MachineConfig::big_gpu_node()));
        // Three-device machine: exercises the shared-frontier protocol and
        // the N-endpoint lint/race vocabulary on every config cell.
        machines.push(("paper-testbed-3dev", MachineConfig::paper_testbed_3dev()));
    }
    let configs = [
        ("default", FluidiclConfig::default()),
        (
            "abort=wg-start",
            FluidiclConfig::default().with_abort_mode(AbortMode::WorkGroupStart),
        ),
        (
            "abort=in-loop",
            FluidiclConfig::default().with_abort_mode(AbortMode::InLoop),
        ),
        (
            "no-opts",
            FluidiclConfig::default()
                .with_wg_split(false)
                .with_buffer_pool(false)
                .with_location_tracking(false),
        ),
        (
            "whole-buffer",
            FluidiclConfig::default().with_whole_buffer_transfers(),
        ),
        (
            "pipeline=1",
            FluidiclConfig::default().with_pipeline_depth(1),
        ),
        (
            "pipeline=4",
            FluidiclConfig::default().with_pipeline_depth(4),
        ),
        (
            "graph-sched",
            FluidiclConfig::default().with_graph_scheduling(true),
        ),
    ];
    let mut units = Vec::new();
    for (mname, machine) in &machines {
        for (cname, config) in &configs {
            units.push((*mname, machine.clone(), *cname, config.clone()));
        }
    }
    let stage2 = fluidicl_par::par_map(units, |(mname, machine, cname, config)| {
        let mut r = UnitReport::default();
        let mut kernels = 0usize;
        let mut flagged = 0usize;
        for b in all_benchmarks() {
            let n = fluidicl_check::sweep_size(b.name);
            let config = config.clone().with_validate_protocol(true);
            let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
            // Second program instance for kernel-def lookups: the runtime
            // consumed the first, and the race detector needs the declared
            // access patterns to lower each trace symbolically.
            let defs = (b.program)(n);
            match b.run_and_validate_sized(&mut rt, n, SWEEP_SEED) {
                Ok(true) => {}
                Ok(false) => {
                    r.lines.push(format!(
                        "  {mname}/{cname} {:8}: output mismatch vs reference",
                        b.name
                    ));
                    r.problems += 1;
                    r.findings.push(JsonFinding {
                        stage: "protocol",
                        machine: mname.to_string(),
                        config: cname.to_string(),
                        bench: b.name.to_string(),
                        kernel: String::new(),
                        rule: "output-mismatch".to_string(),
                        severity: LintSeverity::Error,
                        message: "output mismatch vs reference".to_string(),
                    });
                }
                Err(e) => {
                    r.lines.push(format!("  {mname}/{cname} {:8}: {e}", b.name));
                    r.problems += 1;
                    r.findings.push(JsonFinding {
                        stage: "protocol",
                        machine: mname.to_string(),
                        config: cname.to_string(),
                        bench: b.name.to_string(),
                        kernel: String::new(),
                        rule: "runtime-error".to_string(),
                        severity: LintSeverity::Error,
                        message: e.to_string(),
                    });
                }
            }
            for report in rt.reports() {
                kernels += 1;
                let kdef = defs
                    .kernel(&report.kernel)
                    .expect("reported kernel is registered");
                let race = race_check_report(&kdef, report);
                for (stage, d) in lint_report(report)
                    .iter()
                    .map(|d| ("protocol", d))
                    .chain(race.iter().map(|d| ("race", d)))
                {
                    r.lines.push(format!(
                        "  {mname}/{cname} {:8} kernel `{}`: {d}",
                        b.name, report.kernel
                    ));
                    match d.severity {
                        LintSeverity::Error => r.problems += 1,
                        LintSeverity::Warning => r.warnings += 1,
                    }
                    r.findings.push(JsonFinding {
                        stage,
                        machine: mname.to_string(),
                        config: cname.to_string(),
                        bench: b.name.to_string(),
                        kernel: report.kernel.clone(),
                        rule: d.rule.to_string(),
                        severity: d.severity,
                        message: d.message.clone(),
                    });
                    flagged += 1;
                }
            }
            // Graph-scheduling cells also validate every recorded flush
            // schedule: conservative edge coverage, edge ordering, and the
            // absence of concurrently-scheduled conflicting nodes.
            for schedule in rt.graph_schedules() {
                for d in fluidicl_check::check_schedule(schedule) {
                    r.lines
                        .push(format!("  {mname}/{cname} {:8} schedule: {d}", b.name));
                    match d.severity {
                        LintSeverity::Error => r.problems += 1,
                        LintSeverity::Warning => r.warnings += 1,
                    }
                    r.findings.push(JsonFinding {
                        stage: "graph",
                        machine: mname.to_string(),
                        config: cname.to_string(),
                        bench: b.name.to_string(),
                        kernel: String::new(),
                        rule: d.rule.to_string(),
                        severity: d.severity,
                        message: d.message.clone(),
                    });
                    flagged += 1;
                }
            }
        }
        if flagged == 0 {
            r.lines.push(format!(
                "  {mname}/{cname}: {kernels} kernel trace(s) clean"
            ));
        }
        r
    });
    for r in stage2 {
        for line in &r.lines {
            println!("{line}");
        }
        problems += r.problems;
        warnings += r.warnings;
        findings.extend(r.findings);
    }

    if let Some(path) = &report_json {
        std::fs::write(path, render_report_json(&findings)).expect("write report JSON");
        println!(
            "  wrote {path} ({} finding(s), kernel summaries for {} benchmark(s))",
            findings.len(),
            all_benchmarks().len()
        );
    }

    println!("== sweep done: {problems} error(s), {warnings} warning(s) ==");
    if problems > 0 {
        std::process::exit(1);
    }
}

/// The `--faults` sweep: checks the recovery contract over every
/// benchmark × fault kind × seed cell and writes the JSON artifact.
fn run_faults_mode(seeds: u64, out: &str) {
    let kinds = fluidicl_vcl::FaultKind::all().len();
    let benches = all_benchmarks().len();
    println!(
        "== fault-injection sweep: {benches} benchmarks x {kinds} fault kinds x \
         {seeds} seed(s), each cell twice =="
    );
    let cells = fluidicl_check::run_fault_sweep(seeds);
    let mut failures = 0usize;
    for c in &cells {
        if c.is_failure() {
            failures += 1;
            let what = if c.deterministic {
                c.outcome.label()
            } else {
                "NON-DETERMINISTIC"
            };
            let detail = match &c.outcome {
                CellOutcome::TypedError(d) | CellOutcome::UnexpectedError(d) => d.as_str(),
                _ => "",
            };
            println!(
                "  {:8} {:18} seed {}: {what} {detail}",
                c.bench,
                c.kind.name(),
                c.seed
            );
        }
    }
    let fired = cells.iter().filter(|c| c.fired).count();
    let recovered = cells
        .iter()
        .filter(|c| c.outcome == CellOutcome::Recovered)
        .count();
    let typed = cells
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::TypedError(_)))
        .count();
    println!(
        "  {} cell(s): {recovered} recovered, {typed} typed error(s), {fired} fault(s) \
         fired, {failures} failure(s)",
        cells.len()
    );
    // Three-device non-owner loss: on paper-testbed-3dev the subkernel-kill
    // fault strikes the CPU or the peer GPU; the survivors must always
    // finish bit-identically (typed errors are failures here — the owner
    // survives by construction), with race-clean recovered traces.
    let ndev = fluidicl_check::run_ndev_loss_sweep(seeds);
    let mut ndev_failures = 0usize;
    for c in &ndev {
        if c.is_failure() {
            ndev_failures += 1;
            let what = if c.deterministic {
                c.outcome.label()
            } else {
                "NON-DETERMINISTIC"
            };
            let detail = match &c.outcome {
                CellOutcome::TypedError(d) | CellOutcome::UnexpectedError(d) => d.as_str(),
                _ => "",
            };
            println!(
                "  {:8} 3dev non-owner-loss seed {}: {what} {detail}",
                c.bench, c.seed
            );
        }
    }
    let ndev_fired = ndev.iter().filter(|c| c.fired).count();
    println!(
        "  3dev non-owner loss: {} cell(s), {ndev_fired} loss(es) fired, \
         {ndev_failures} failure(s)",
        ndev.len()
    );
    failures += ndev_failures;
    // Owner failover: on paper-testbed-3dev the acting owner itself is
    // killed; a surviving peer GPU must be promoted (epoch-fenced) and the
    // run must still finish bit-identically — or, when the cascade takes
    // every device, fail with a typed error. Cells are race-checked and
    // run twice; the sweep as a whole must exercise at least one actual
    // promotion, otherwise the failover path silently went untested.
    let failover = fluidicl_check::run_failover_sweep(seeds);
    let mut failover_failures = 0usize;
    for c in &failover {
        if c.is_failure() {
            failover_failures += 1;
            let what = if c.deterministic {
                c.outcome.label()
            } else {
                "NON-DETERMINISTIC"
            };
            let detail = match &c.outcome {
                CellOutcome::TypedError(d) | CellOutcome::UnexpectedError(d) => d.as_str(),
                _ => "",
            };
            println!(
                "  {:8} {:24} seed {}: {what} {detail}",
                c.bench, c.family, c.seed
            );
        }
    }
    let promoted = failover.iter().filter(|c| c.promoted).count();
    if promoted == 0 {
        println!("  owner failover: no cell promoted a peer to owner");
        failover_failures += 1;
    }
    let failover_fired = failover.iter().filter(|c| c.fired).count();
    let failover_recovered = failover
        .iter()
        .filter(|c| c.outcome == CellOutcome::Recovered)
        .count();
    println!(
        "  owner failover: {} cell(s), {failover_fired} fault(s) fired, \
         {promoted} promotion(s), {failover_recovered} recovered, \
         {failover_failures} failure(s)",
        failover.len()
    );
    failures += failover_failures;
    // Fault-aware chunk shrink: under transient transfer faults, halving
    // the chunk on retry must never launch a *larger* post-fault subkernel
    // (the work a watchdog abandonment would strand un-merged), and must
    // strictly shrink that at-risk window somewhere in the sweep.
    let shrink = fluidicl_check::run_shrink_comparison(seeds);
    let mut shrink_regressions = 0usize;
    for c in &shrink {
        if c.is_failure() {
            shrink_regressions += 1;
            println!(
                "  {:8} plan_seed {}: shrink-on-retry at-risk window grew \
                 ({} wgs vs {} without)",
                c.bench, c.plan_seed, c.at_risk_with_shrink, c.at_risk_without_shrink
            );
        }
    }
    let shrink_gains = shrink.iter().filter(|c| c.improved()).count();
    if shrink_gains == 0 {
        println!("  shrink-on-retry: no cell shrank its at-risk window");
        shrink_regressions += 1;
    }
    println!(
        "  shrink-on-retry: {} comparison(s), {shrink_gains} with a smaller \
         post-fault at-risk window, {shrink_regressions} regression(s)",
        shrink.len()
    );
    failures += shrink_regressions;
    let json = fluidicl_check::render_faults_json(&cells, &ndev, &failover, &shrink, seeds);
    std::fs::write(out, &json).expect("write FAULTS_summary.json");
    println!("  wrote {out}");
    if failures > 0 {
        std::process::exit(1);
    }
}
