//! `fluidicl-check` — sweep the Polybench suite through both checkers.
//!
//! Stage 1 audits every benchmark's kernels with the access sanitizer
//! ([`fluidicl_check::AuditDriver`]) and validates results against the
//! sequential references. Stage 2 co-executes every benchmark under
//! FluidiCL across three machine models and several runtime
//! configurations with protocol validation on, then lints every kernel
//! report again explicitly. Exits non-zero if anything is flagged.

use fluidicl::{lint_report, Fluidicl, FluidiclConfig, LintSeverity};
use fluidicl_check::{AuditDriver, SWEEP_SEED};
use fluidicl_hetsim::{AbortMode, MachineConfig};
use fluidicl_polybench::all_benchmarks;

fn main() {
    let mut problems = 0usize;
    let mut warnings = 0usize;

    println!("== stage 1: access sanitizer over the Polybench suite ==");
    for b in all_benchmarks() {
        let n = fluidicl_check::sweep_size(b.name);
        let mut driver = AuditDriver::new((b.program)(n));
        match b.run_and_validate_sized(&mut driver, n, SWEEP_SEED) {
            Ok(true) => {}
            Ok(false) => {
                println!("  {:8} n={n}: output mismatch vs reference", b.name);
                problems += 1;
            }
            Err(e) => {
                println!("  {:8} n={n}: driver error: {e}", b.name);
                problems += 1;
            }
        }
        let mut flagged = 0usize;
        for finding in driver.findings() {
            for d in &finding.diagnostics {
                println!("  {:8} kernel `{}`: {d}", b.name, finding.kernel);
                match d.severity {
                    LintSeverity::Error => problems += 1,
                    LintSeverity::Warning => warnings += 1,
                }
                flagged += 1;
            }
        }
        if flagged == 0 {
            println!(
                "  {:8} n={n}: {} launch(es) clean",
                b.name,
                driver.findings().len()
            );
        }
    }

    println!("== stage 2: protocol linter across machines and configs ==");
    let machines = [
        ("paper-testbed", MachineConfig::paper_testbed()),
        ("weak-gpu-laptop", MachineConfig::weak_gpu_laptop()),
        ("big-gpu-node", MachineConfig::big_gpu_node()),
    ];
    let configs = [
        ("default", FluidiclConfig::default()),
        (
            "abort=wg-start",
            FluidiclConfig::default().with_abort_mode(AbortMode::WorkGroupStart),
        ),
        (
            "abort=in-loop",
            FluidiclConfig::default().with_abort_mode(AbortMode::InLoop),
        ),
        (
            "no-opts",
            FluidiclConfig::default()
                .with_wg_split(false)
                .with_buffer_pool(false)
                .with_location_tracking(false),
        ),
    ];
    for (mname, machine) in &machines {
        for (cname, config) in &configs {
            let mut kernels = 0usize;
            let mut flagged = 0usize;
            for b in all_benchmarks() {
                let n = fluidicl_check::sweep_size(b.name);
                let config = config.clone().with_validate_protocol(true);
                let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
                match b.run_and_validate_sized(&mut rt, n, SWEEP_SEED) {
                    Ok(true) => {}
                    Ok(false) => {
                        println!(
                            "  {mname}/{cname} {:8}: output mismatch vs reference",
                            b.name
                        );
                        problems += 1;
                    }
                    Err(e) => {
                        println!("  {mname}/{cname} {:8}: {e}", b.name);
                        problems += 1;
                    }
                }
                for report in rt.reports() {
                    kernels += 1;
                    for d in lint_report(report) {
                        println!(
                            "  {mname}/{cname} {:8} kernel `{}`: {d}",
                            b.name, report.kernel
                        );
                        match d.severity {
                            LintSeverity::Error => problems += 1,
                            LintSeverity::Warning => warnings += 1,
                        }
                        flagged += 1;
                    }
                }
            }
            if flagged == 0 {
                println!("  {mname}/{cname}: {kernels} kernel trace(s) clean");
            }
        }
    }

    println!("== sweep done: {problems} error(s), {warnings} warning(s) ==");
    if problems > 0 {
        std::process::exit(1);
    }
}
