//! `fluidicl-check` — sweep the Polybench suite through both checkers.
//!
//! Stage 1 audits every benchmark's kernels with the access sanitizer
//! ([`fluidicl_check::AuditDriver`]) and validates results against the
//! sequential references. Stage 2 co-executes every benchmark under
//! FluidiCL across three machine models and several runtime
//! configurations with protocol validation on, then lints every kernel
//! report again explicitly. Exits non-zero if anything is flagged.
//!
//! Both stages fan their independent units out over the [`fluidicl_par`]
//! pool; per-unit output is buffered and printed in sweep order, so the
//! report and the exit code are identical to a sequential (`--jobs 1`)
//! run. `--quick` restricts stage 2 to the paper-testbed machine (CI's
//! fast path); `--jobs N` caps the worker threads. `--emit-disjoint`
//! inserts a disjoint-write audit ([`fluidicl_check::DisjointDriver`])
//! between the stages: every launch's per-work-group write footprints are
//! replayed and `with_disjoint_writes` declarations that the replay
//! refutes are errors.

use fluidicl::{lint_report, Fluidicl, FluidiclConfig, LintSeverity};
use fluidicl_check::{AuditDriver, DisjointDriver, SWEEP_SEED};
use fluidicl_hetsim::{AbortMode, MachineConfig};
use fluidicl_polybench::all_benchmarks;

/// Buffered result of one sweep unit: the lines it prints plus its error
/// and warning counts.
#[derive(Default)]
struct UnitReport {
    lines: Vec<String>,
    problems: usize,
    warnings: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut emit_disjoint = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--emit-disjoint" => emit_disjoint = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs requires a positive integer argument");
                    std::process::exit(2);
                };
                fluidicl_par::configure_jobs(n);
            }
            other => {
                eprintln!("usage: fluidicl-check [--quick] [--emit-disjoint] [--jobs N]");
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut problems = 0usize;
    let mut warnings = 0usize;

    println!("== stage 1: access sanitizer over the Polybench suite ==");
    let stage1 = fluidicl_par::par_map(all_benchmarks(), |b| {
        let mut r = UnitReport::default();
        let n = fluidicl_check::sweep_size(b.name);
        let mut driver = AuditDriver::new((b.program)(n));
        match b.run_and_validate_sized(&mut driver, n, SWEEP_SEED) {
            Ok(true) => {}
            Ok(false) => {
                r.lines.push(format!(
                    "  {:8} n={n}: output mismatch vs reference",
                    b.name
                ));
                r.problems += 1;
            }
            Err(e) => {
                r.lines
                    .push(format!("  {:8} n={n}: driver error: {e}", b.name));
                r.problems += 1;
            }
        }
        let mut flagged = 0usize;
        for finding in driver.findings() {
            for d in &finding.diagnostics {
                r.lines
                    .push(format!("  {:8} kernel `{}`: {d}", b.name, finding.kernel));
                match d.severity {
                    LintSeverity::Error => r.problems += 1,
                    LintSeverity::Warning => r.warnings += 1,
                }
                flagged += 1;
            }
        }
        if flagged == 0 {
            r.lines.push(format!(
                "  {:8} n={n}: {} launch(es) clean",
                b.name,
                driver.findings().len()
            ));
        }
        r
    });
    for r in stage1 {
        for line in &r.lines {
            println!("{line}");
        }
        problems += r.problems;
        warnings += r.warnings;
    }

    if emit_disjoint {
        println!("== disjoint-write audit over the Polybench suite ==");
        let audit = fluidicl_par::par_map(all_benchmarks(), |b| {
            let mut r = UnitReport::default();
            let n = fluidicl_check::sweep_size(b.name);
            let mut driver = DisjointDriver::new((b.program)(n));
            match b.run_and_validate_sized(&mut driver, n, SWEEP_SEED) {
                Ok(true) => {}
                Ok(false) => {
                    r.lines.push(format!(
                        "  {:8} n={n}: output mismatch vs reference",
                        b.name
                    ));
                    r.problems += 1;
                }
                Err(e) => {
                    r.lines
                        .push(format!("  {:8} n={n}: driver error: {e}", b.name));
                    r.problems += 1;
                }
            }
            for f in driver.findings() {
                let verdict = match (f.declared, f.proven) {
                    (true, true) => "declared disjoint, proven".to_string(),
                    (false, true) => "undeclared, proven disjoint".to_string(),
                    (false, false) => format!(
                        "overlapping writes ({})",
                        f.detail.as_deref().unwrap_or("no detail")
                    ),
                    (true, false) => {
                        r.problems += 1;
                        format!(
                            "FALSE `with_disjoint_writes` declaration: {}",
                            f.detail.as_deref().unwrap_or("overlap found")
                        )
                    }
                };
                r.lines.push(format!(
                    "  {:8} kernel `{}` ({} group(s)): {verdict}",
                    b.name, f.kernel, f.groups
                ));
            }
            (r, driver.verified_declarations())
        });
        let mut verified = 0usize;
        for (r, v) in audit {
            for line in &r.lines {
                println!("{line}");
            }
            problems += r.problems;
            warnings += r.warnings;
            verified += v;
        }
        println!("  {verified} declared-disjoint launch(es) verified");
    }

    println!("== stage 2: protocol linter across machines and configs ==");
    let mut machines = vec![("paper-testbed", MachineConfig::paper_testbed())];
    if !quick {
        machines.push(("weak-gpu-laptop", MachineConfig::weak_gpu_laptop()));
        machines.push(("big-gpu-node", MachineConfig::big_gpu_node()));
    }
    let configs = [
        ("default", FluidiclConfig::default()),
        (
            "abort=wg-start",
            FluidiclConfig::default().with_abort_mode(AbortMode::WorkGroupStart),
        ),
        (
            "abort=in-loop",
            FluidiclConfig::default().with_abort_mode(AbortMode::InLoop),
        ),
        (
            "no-opts",
            FluidiclConfig::default()
                .with_wg_split(false)
                .with_buffer_pool(false)
                .with_location_tracking(false),
        ),
        (
            "dirty-range",
            FluidiclConfig::default().with_dirty_range_transfers(true),
        ),
    ];
    let mut units = Vec::new();
    for (mname, machine) in &machines {
        for (cname, config) in &configs {
            units.push((*mname, machine.clone(), *cname, config.clone()));
        }
    }
    let stage2 = fluidicl_par::par_map(units, |(mname, machine, cname, config)| {
        let mut r = UnitReport::default();
        let mut kernels = 0usize;
        let mut flagged = 0usize;
        for b in all_benchmarks() {
            let n = fluidicl_check::sweep_size(b.name);
            let config = config.clone().with_validate_protocol(true);
            let mut rt = Fluidicl::new(machine.clone(), config, (b.program)(n));
            match b.run_and_validate_sized(&mut rt, n, SWEEP_SEED) {
                Ok(true) => {}
                Ok(false) => {
                    r.lines.push(format!(
                        "  {mname}/{cname} {:8}: output mismatch vs reference",
                        b.name
                    ));
                    r.problems += 1;
                }
                Err(e) => {
                    r.lines.push(format!("  {mname}/{cname} {:8}: {e}", b.name));
                    r.problems += 1;
                }
            }
            for report in rt.reports() {
                kernels += 1;
                for d in lint_report(report) {
                    r.lines.push(format!(
                        "  {mname}/{cname} {:8} kernel `{}`: {d}",
                        b.name, report.kernel
                    ));
                    match d.severity {
                        LintSeverity::Error => r.problems += 1,
                        LintSeverity::Warning => r.warnings += 1,
                    }
                    flagged += 1;
                }
            }
        }
        if flagged == 0 {
            r.lines.push(format!(
                "  {mname}/{cname}: {kernels} kernel trace(s) clean"
            ));
        }
        r
    });
    for r in stage2 {
        for line in &r.lines {
            println!("{line}");
        }
        problems += r.problems;
        warnings += r.warnings;
    }

    println!("== sweep done: {problems} error(s), {warnings} warning(s) ==");
    if problems > 0 {
        std::process::exit(1);
    }
}
